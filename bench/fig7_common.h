// Shared harness for reproducing Figure 7 (a/b/c) of the paper: mean
// evaluation time of 10 generated queries per query pattern, for
// renamings-per-label in {0, 5, 10}, n in {1, 10, 100, 1000, all}, and
// both algorithms ("direct" = Section 6 pruning, "schema" = Section 7
// incremental). The paper's testbed was a 450 MHz Pentium III over a
// 1M-element collection; the default here is a scaled-down collection —
// absolute times differ, the series shapes are what EXPERIMENTS.md
// compares. Scale with APPROXQL_BENCH_ELEMENTS (default 60000).
#ifndef APPROXQL_BENCH_FIG7_COMMON_H_
#define APPROXQL_BENCH_FIG7_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "util/timer.h"

namespace approxql::bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  size_t parsed = std::strtoull(value, nullptr, 10);
  return parsed > 0 ? parsed : fallback;
}

inline engine::Database BuildBenchCollection() {
  gen::XmlGenOptions options;
  options.seed = 20020314;  // EDBT 2002
  options.total_elements = EnvSize("APPROXQL_BENCH_ELEMENTS", 60000);
  // The paper's ratios: 100 names and 10 words/element; the vocabulary
  // scales with the collection (paper: 100k terms per 1M elements).
  options.element_names = 100;
  options.vocabulary = std::max<size_t>(options.total_elements / 10, 100);
  options.words_per_element = 10.0;
  options.zipf_theta = 1.0;
  options.template_nodes = 150;
  options.elements_per_document = EnvSize("APPROXQL_BENCH_DOC_ELEMENTS", 100);

  gen::XmlGenerator generator(options);
  auto tree = generator.GenerateTree(cost::CostModel());
  APPROXQL_CHECK(tree.ok()) << tree.status();
  auto db = engine::Database::FromDataTree(std::move(tree).value(),
                                           cost::CostModel());
  APPROXQL_CHECK(db.ok()) << db.status();
  return std::move(db).value();
}

/// Runs the full sweep for one pattern and prints the figure's series.
inline int RunFig7(const char* figure, const char* pattern_name,
                   std::string_view pattern) {
  // k-cap warnings are folded into the "capped" column instead.
  util::SetLogLevel(util::LogLevel::kError);
  std::printf("=== Figure 7(%s): %s  pattern: %s ===\n", figure, pattern_name,
              std::string(pattern).c_str());
  util::WallTimer build_timer;
  engine::Database db = BuildBenchCollection();
  auto stats = db.GetStats();
  std::printf(
      "collection: %zu elements, %zu words, %zu labels, schema %zu "
      "(built in %.1fs)\n",
      stats.struct_nodes, stats.text_nodes, stats.distinct_labels,
      stats.schema_nodes, build_timer.ElapsedSeconds());

  const size_t kQueriesPerPoint = EnvSize("APPROXQL_BENCH_QUERIES", 10);
  const size_t kRenamings[] = {0, 5, 10};
  const size_t kNs[] = {1, 10, 100, 1000, SIZE_MAX};

  // "capped" counts queries whose schema evaluation stopped at the k
  // bound before finding n results (EXPERIMENTS.md discusses this —
  // it marks the regime where the paper's own measurements show the
  // schema strategy degrading).
  std::printf("%-10s %-8s %-9s %12s %12s %8s\n", "renamings", "n", "",
              "mean-ms", "results", "capped");
  for (size_t renamings : kRenamings) {
    // Generate the query set once per renaming level (paper: one set of
    // 10 queries per pattern and setting).
    gen::QueryGenOptions q_options;
    q_options.seed = 1000 + renamings;
    q_options.renamings_per_label = renamings;
    gen::QueryGenerator qgen(db, q_options);
    std::vector<gen::GeneratedQuery> queries;
    for (size_t i = 0; i < kQueriesPerPoint; ++i) {
      auto generated = qgen.Generate(pattern);
      APPROXQL_CHECK(generated.ok()) << generated.status();
      queries.push_back(std::move(generated).value());
    }
    for (size_t n : kNs) {
      for (engine::Strategy strategy :
           {engine::Strategy::kDirect, engine::Strategy::kSchema}) {
        engine::ExecOptions options;
        options.strategy = strategy;
        options.n = n;
        options.schema.initial_k = 16;
        options.schema.delta_k = 16;
        options.schema.growth = 2.0;  // bounds rounds for n = all
        double total_ms = 0;
        size_t total_results = 0;
        size_t capped = 0;
        for (const auto& generated : queries) {
          options.cost_model = &generated.cost_model;
          engine::SchemaEvalStats stats;
          options.schema_stats_out = &stats;
          util::WallTimer timer;
          auto answers = db.Execute(generated.query, options);
          total_ms += timer.ElapsedSeconds() * 1000.0;
          APPROXQL_CHECK(answers.ok()) << answers.status();
          total_results += answers->size();
          capped += stats.k_capped ? 1 : 0;
        }
        std::printf("%-10zu %-8s %-9s %12.3f %12.1f %8zu\n", renamings,
                    n == SIZE_MAX ? "all" : std::to_string(n).c_str(),
                    strategy == engine::Strategy::kDirect ? "direct"
                                                          : "schema",
                    total_ms / static_cast<double>(queries.size()),
                    static_cast<double>(total_results) /
                        static_cast<double>(queries.size()),
                    capped);
      }
    }
  }
  return 0;
}

}  // namespace approxql::bench

#endif  // APPROXQL_BENCH_FIG7_COMMON_H_
