// Reproduces Figure 7(b): evaluation times of query pattern 2, the
// "small Boolean query" name[name[term and (term or term)]].
#include "bench/fig7_common.h"
#include "gen/query_generator.h"

int main() {
  return approxql::bench::RunFig7("b", "small Boolean query",
                                  approxql::gen::kPattern2);
}
