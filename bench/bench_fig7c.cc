// Reproduces Figure 7(c): evaluation times of query pattern 3, the
// "large Boolean query".
#include "bench/fig7_common.h"
#include "gen/query_generator.h"

int main() {
  return approxql::bench::RunFig7("c", "large Boolean query",
                                  approxql::gen::kPattern3);
}
