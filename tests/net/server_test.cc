#include "net/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "net/client.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "util/crc32.h"

namespace approxql::net {
namespace {

using engine::Database;
using engine::ExecOptions;
using engine::Strategy;
using service::QueryService;
using service::ServiceOptions;

std::vector<std::string> CatalogDocs() {
  return {
      "<catalog><cd><title>piano concerto</title>"
      "<composer>rachmaninov</composer></cd></catalog>",
      "<catalog><cd><title>goldberg variations</title>"
      "<composer>bach</composer></cd></catalog>",
  };
}

Database MakeDb() {
  cost::CostModel model;
  model.SetRenameCost(NodeType::kText, "concerto", "variations", 3);
  model.SetDeleteCost(NodeType::kText, "piano", 5);
  auto db = Database::BuildFromXml(CatalogDocs(), std::move(model));
  APPROXQL_CHECK(db.ok()) << db.status();
  return std::move(db).value();
}

constexpr char kQuery[] = R"(cd[title["piano" and "concerto"]])";

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServiceOptions service_options = {.num_threads = 2},
                   ServerOptions server_options = {}) {
    db_ = std::make_unique<Database>(MakeDb());
    service_ = std::make_unique<QueryService>(*db_, service_options);
    server_ = std::make_unique<Server>(*service_, *db_, server_options);
    auto started = server_->Start();
    ASSERT_TRUE(started.ok()) << started;
  }

  void TearDown() override {
    if (server_) server_->Shutdown(/*drain=*/true);
  }

  Client MakeClient() {
    ClientOptions options;
    options.port = server_->port();
    return Client(options);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Server> server_;  // after service_: destroyed first
};

// --- raw-socket helpers (protocol abuse the Client cannot produce) ---------

int ConnectRaw(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                       MSG_NOSIGNAL);
    if (n <= 0 && errno != EINTR) return false;
    if (n > 0) sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until `count` frames decode, EOF, or a 5 s safety timeout.
/// Returns the frames read (possibly fewer than requested on EOF).
std::vector<std::pair<FrameHeader, std::string>> ReadFrames(int fd,
                                                            size_t count) {
  std::vector<std::pair<FrameHeader, std::string>> frames;
  FrameDecoder decoder;
  char buf[8192];
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (frames.size() < count) {
    FrameHeader header;
    std::string payload;
    util::Status error;
    FrameDecoder::Next next = decoder.Take(&header, &payload, &error);
    if (next == FrameDecoder::Next::kFrame) {
      frames.emplace_back(header, std::move(payload));
      continue;
    }
    if (next == FrameDecoder::Next::kError) break;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) break;
    pollfd pfd{fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(left.count()));
    if (ready <= 0) break;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    decoder.Append(buf, static_cast<size_t>(n));
  }
  return frames;
}

/// True when recv() reports EOF (server closed) within 5 s.
bool WaitForClose(int fd) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  char buf[4096];
  for (;;) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return false;
    pollfd pfd{fd, POLLIN, 0};
    if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) return false;
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return true;                    // clean EOF
    if (n < 0) return errno != EINTR;           // RST also counts as closed
  }
}

// --- equivalence -----------------------------------------------------------

TEST_F(ServerTest, WireAnswersMatchInProcessExecutionBothStrategies) {
  StartServer();
  Client client = MakeClient();
  for (Strategy strategy : {Strategy::kSchema, Strategy::kDirect}) {
    WireRequest request;
    request.query = kQuery;
    request.strategy = strategy;
    request.n = std::numeric_limits<uint64_t>::max();
    request.bypass_cache = true;
    auto response = client.Call(request, /*deadline_ms=*/5000);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_FALSE(response->truncated);

    ExecOptions exec;
    exec.strategy = strategy;
    exec.n = SIZE_MAX;
    auto expected = db_->Execute(kQuery, exec);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(response->answers.size(), expected->size());
    for (size_t i = 0; i < expected->size(); ++i) {
      EXPECT_EQ(response->answers[i].cost, (*expected)[i].cost);
      EXPECT_EQ(response->answers[i].root, (*expected)[i].root);
      // The document root is resolved server-side; it is never the
      // super-root (node 0) for a real answer.
      EXPECT_NE(response->answers[i].doc, 0u);
    }
  }
}

TEST_F(ServerTest, ExpiredDeadlineComesBackAsDeadlineExceeded) {
  StartServer();
  Client client = MakeClient();
  WireRequest request;
  request.query = kQuery;
  request.deadline_ms = -1;  // already expired: deterministic expiry
  auto response = client.Call(request, /*deadline_ms=*/5000);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded()) << response.status();
}

TEST_F(ServerTest, AdmissionRejectionComesBackAsResourceExhausted) {
  // queue_capacity = 0 makes every TrySubmit fail, so each wire request
  // deterministically exercises the backpressure path.
  StartServer(ServiceOptions{.num_threads = 1, .queue_capacity = 0});
  Client client = MakeClient();
  WireRequest request;
  request.query = kQuery;
  auto response = client.Call(request, /*deadline_ms=*/5000);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsResourceExhausted()) << response.status();
  // The connection survived the rejection.
  auto metrics = client.FetchMetrics(/*deadline_ms=*/5000);
  EXPECT_TRUE(metrics.ok()) << metrics.status();
}

TEST_F(ServerTest, MetricsDumpCoversServiceAndWire) {
  StartServer();
  Client client = MakeClient();
  WireRequest request;
  request.query = kQuery;
  ASSERT_TRUE(client.Call(request, 5000).ok());
  auto metrics = client.FetchMetrics(/*deadline_ms=*/5000);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->find("net_requests"), std::string::npos);
  EXPECT_NE(metrics->find("net_connections_open"), std::string::npos);
  EXPECT_NE(metrics->find("net_wire_latency_us"), std::string::npos);
  EXPECT_NE(metrics->find("thread_pool_queue_depth"), std::string::npos);
}

// --- robustness ------------------------------------------------------------

TEST_F(ServerTest, GarbageBytesCloseOnlyThatConnection) {
  StartServer();
  Client healthy = MakeClient();
  WireRequest request;
  request.query = kQuery;
  ASSERT_TRUE(healthy.Call(request, 5000).ok());

  int bad = ConnectRaw(server_->port());
  ASSERT_GE(bad, 0);
  // Declares a body of 0xffffffff bytes: over max_frame_bytes, instant
  // protocol error.
  ASSERT_TRUE(SendAll(bad, std::string(64, '\xff')));
  EXPECT_TRUE(WaitForClose(bad));
  ::close(bad);

  // The healthy connection is untouched and the server still serves.
  auto response = healthy.Call(request, 5000);
  EXPECT_TRUE(response.ok()) << response.status();
  EXPECT_GE(server_->GetStats().protocol_errors, 1u);
}

TEST_F(ServerTest, BadCrcClosesConnection) {
  StartServer();
  std::string wire;
  WireRequest corrupt_request;
  corrupt_request.query = kQuery;
  ASSERT_TRUE(EncodeFrame(FrameHeader{kProtocolVersion, 1,
                          static_cast<uint32_t>(MessageType::kQueryRequest)},
              EncodeQueryRequest(corrupt_request), &wire).ok());
  wire.back() = static_cast<char>(wire.back() ^ 0x1);  // corrupt the CRC

  int fd = ConnectRaw(server_->port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, wire));
  EXPECT_TRUE(WaitForClose(fd));
  ::close(fd);
  EXPECT_GE(server_->GetStats().protocol_errors, 1u);

  Client client = MakeClient();
  WireRequest request;
  request.query = kQuery;
  EXPECT_TRUE(client.Call(request, 5000).ok());
}

TEST_F(ServerTest, OversizedFrameClosesConnection) {
  ServerOptions options;
  options.max_frame_bytes = 1024;
  StartServer(ServiceOptions{.num_threads = 2}, options);
  int fd = ConnectRaw(server_->port());
  ASSERT_GE(fd, 0);
  const uint32_t huge = 1u << 16;  // over the 1 KiB limit
  char prefix[4] = {static_cast<char>(huge & 0xff),
                    static_cast<char>((huge >> 8) & 0xff),
                    static_cast<char>((huge >> 16) & 0xff),
                    static_cast<char>((huge >> 24) & 0xff)};
  ASSERT_TRUE(SendAll(fd, std::string_view(prefix, sizeof(prefix))));
  EXPECT_TRUE(WaitForClose(fd));
  ::close(fd);
}

TEST_F(ServerTest, UnknownMessageTypeFailsOnlyThatRequest) {
  StartServer();
  int fd = ConnectRaw(server_->port());
  ASSERT_GE(fd, 0);
  std::string wire;
  ASSERT_TRUE(EncodeFrame(FrameHeader{kProtocolVersion, 7, /*type=*/99}, "whatever",
              &wire).ok());
  // Follow with a valid query on the same connection: the unknown type
  // must cost one error response, not the connection.
  WireRequest request;
  request.query = kQuery;
  ASSERT_TRUE(EncodeFrame(FrameHeader{kProtocolVersion, 8,
                          static_cast<uint32_t>(MessageType::kQueryRequest)},
              EncodeQueryRequest(request), &wire).ok());
  ASSERT_TRUE(SendAll(fd, wire));

  auto frames = ReadFrames(fd, 2);
  ::close(fd);
  ASSERT_EQ(frames.size(), 2u);
  for (auto& [header, payload] : frames) {
    ASSERT_EQ(header.type,
              static_cast<uint32_t>(MessageType::kQueryResponse));
    WireResponse response;
    ASSERT_TRUE(DecodeQueryResponse(payload, &response).ok());
    if (header.request_id == 7) {
      EXPECT_EQ(response.status_code,
                static_cast<uint32_t>(util::StatusCode::kUnimplemented));
    } else {
      EXPECT_EQ(header.request_id, 8u);
      EXPECT_EQ(response.status_code,
                static_cast<uint32_t>(util::StatusCode::kOk));
      EXPECT_FALSE(response.answers.empty());
    }
  }
}

TEST_F(ServerTest, MalformedRequestPayloadFailsOnlyThatRequest) {
  StartServer();
  int fd = ConnectRaw(server_->port());
  ASSERT_GE(fd, 0);
  std::string wire;
  ASSERT_TRUE(EncodeFrame(FrameHeader{kProtocolVersion, 3,
                          static_cast<uint32_t>(MessageType::kQueryRequest)},
              "\x05trunc", &wire).ok());  // claims 5 query bytes, CRC still valid
  ASSERT_TRUE(SendAll(fd, wire));
  auto frames = ReadFrames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  WireResponse response;
  ASSERT_TRUE(DecodeQueryResponse(frames[0].second, &response).ok());
  EXPECT_NE(response.status_code,
            static_cast<uint32_t>(util::StatusCode::kOk));

  // Same connection still answers valid requests.
  WireRequest request;
  request.query = kQuery;
  wire.clear();
  ASSERT_TRUE(EncodeFrame(FrameHeader{kProtocolVersion, 4,
                          static_cast<uint32_t>(MessageType::kQueryRequest)},
              EncodeQueryRequest(request), &wire).ok());
  ASSERT_TRUE(SendAll(fd, wire));
  frames = ReadFrames(fd, 1);
  ::close(fd);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first.request_id, 4u);
}

TEST_F(ServerTest, MidRequestDisconnectLeavesServerServing) {
  StartServer();
  for (int round = 0; round < 3; ++round) {
    int fd = ConnectRaw(server_->port());
    ASSERT_GE(fd, 0);
    WireRequest request;
    request.query = kQuery;
    request.bypass_cache = true;
    std::string wire;
    ASSERT_TRUE(EncodeFrame(FrameHeader{kProtocolVersion, 1,
                            static_cast<uint32_t>(MessageType::kQueryRequest)},
                EncodeQueryRequest(request), &wire).ok());
    ASSERT_TRUE(SendAll(fd, wire));
    ::close(fd);  // gone before the response can be written
  }
  // The dropped responses must not wedge or crash the loop.
  Client client = MakeClient();
  WireRequest request;
  request.query = kQuery;
  auto response = client.Call(request, 5000);
  EXPECT_TRUE(response.ok()) << response.status();
}

TEST_F(ServerTest, TornFrameAtDisconnectIsHarmless) {
  StartServer();
  int fd = ConnectRaw(server_->port());
  ASSERT_GE(fd, 0);
  std::string wire;
  WireRequest request;
  request.query = kQuery;
  ASSERT_TRUE(EncodeFrame(FrameHeader{kProtocolVersion, 1,
                          static_cast<uint32_t>(MessageType::kQueryRequest)},
              EncodeQueryRequest(request), &wire).ok());
  ASSERT_TRUE(SendAll(fd, wire.substr(0, wire.size() / 2)));
  ::close(fd);  // peer dies mid-frame

  Client client = MakeClient();
  auto response = client.Call(request, 5000);
  EXPECT_TRUE(response.ok()) << response.status();
}

TEST_F(ServerTest, PipelinedRequestsAllAnsweredAndMatchedById) {
  StartServer();
  int fd = ConnectRaw(server_->port());
  ASSERT_GE(fd, 0);
  constexpr uint64_t kFirstId = 100;
  constexpr size_t kCount = 8;
  std::string wire;
  for (size_t i = 0; i < kCount; ++i) {
    WireRequest request;
    request.query = kQuery;
    request.bypass_cache = true;
    ASSERT_TRUE(EncodeFrame(FrameHeader{kProtocolVersion, kFirstId + i,
                            static_cast<uint32_t>(MessageType::kQueryRequest)},
                EncodeQueryRequest(request), &wire).ok());
  }
  ASSERT_TRUE(SendAll(fd, wire));  // one burst, no waiting in between

  auto frames = ReadFrames(fd, kCount);
  ::close(fd);
  ASSERT_EQ(frames.size(), kCount);
  std::vector<bool> seen(kCount, false);
  for (auto& [header, payload] : frames) {
    ASSERT_GE(header.request_id, kFirstId);
    ASSERT_LT(header.request_id, kFirstId + kCount);
    size_t index = static_cast<size_t>(header.request_id - kFirstId);
    EXPECT_FALSE(seen[index]) << "duplicate response for id "
                              << header.request_id;
    seen[index] = true;
    WireResponse response;
    ASSERT_TRUE(DecodeQueryResponse(payload, &response).ok());
    EXPECT_EQ(response.status_code,
              static_cast<uint32_t>(util::StatusCode::kOk));
  }
}

TEST_F(ServerTest, GracefulDrainFlushesInFlightResponses) {
  StartServer();
  int fd = ConnectRaw(server_->port());
  ASSERT_GE(fd, 0);
  WireRequest request;
  request.query = kQuery;
  request.bypass_cache = true;
  std::string wire;
  ASSERT_TRUE(EncodeFrame(FrameHeader{kProtocolVersion, 55,
                          static_cast<uint32_t>(MessageType::kQueryRequest)},
              EncodeQueryRequest(request), &wire).ok());
  ASSERT_TRUE(SendAll(fd, wire));
  // Wait until the request is past admission (SubmitAsync ran), then
  // begin the drain: the response must still reach the socket.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (service_->GetSnapshot().submitted == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "request never admitted";
    std::this_thread::yield();
  }
  server_->RequestDrain();

  auto frames = ReadFrames(fd, 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first.request_id, 55u);
  WireResponse response;
  ASSERT_TRUE(DecodeQueryResponse(frames[0].second, &response).ok());
  EXPECT_EQ(response.status_code,
            static_cast<uint32_t>(util::StatusCode::kOk));
  EXPECT_TRUE(WaitForClose(fd));  // drain ends by closing the connection
  ::close(fd);
  server_->Wait();  // loop exits on its own after the drain
}

TEST_F(ServerTest, RequestsDuringDrainAreTurnedAway) {
  StartServer();
  Client client = MakeClient();
  WireRequest request;
  request.query = kQuery;
  ASSERT_TRUE(client.Call(request, 5000).ok());  // connection established
  server_->RequestDrain();
  // The already-open connection may get kUnavailable or a close,
  // depending on where the loop is; either way it must not hang.
  auto response = client.Call(request, /*deadline_ms=*/5000);
  EXPECT_FALSE(response.ok());
  server_->Wait();
}

TEST_F(ServerTest, IdleConnectionIsSweptAndClientRecovers) {
  ServerOptions options;
  options.idle_timeout = std::chrono::milliseconds(50);
  StartServer(ServiceOptions{.num_threads = 2}, options);
  Client client = MakeClient();
  WireRequest request;
  request.query = kQuery;
  ASSERT_TRUE(client.Call(request, 5000).ok());
  // Exceed the idle timeout (plus the loop's 200 ms sweep cadence).
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  // The first call may land on the swept socket and fail; the client
  // reconnects and the next one must succeed.
  auto retried = client.Call(request, 5000);
  if (!retried.ok()) retried = client.Call(request, 5000);
  EXPECT_TRUE(retried.ok()) << retried.status();
  EXPECT_GE(server_->GetStats().connections_accepted, 2u);
}

TEST_F(ServerTest, ConnectionLimitRejectsExcessConnections) {
  ServerOptions options;
  options.max_connections = 1;
  StartServer(ServiceOptions{.num_threads = 2}, options);
  Client first = MakeClient();
  WireRequest request;
  request.query = kQuery;
  ASSERT_TRUE(first.Call(request, 5000).ok());  // holds the only slot

  int second = ConnectRaw(server_->port());
  ASSERT_GE(second, 0);  // accepted by the kernel...
  EXPECT_TRUE(WaitForClose(second));  // ...then closed by the server
  ::close(second);
  EXPECT_GE(server_->GetStats().connections_rejected, 1u);

  // Releasing the slot lets new connections in again.
  first.Close();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  for (;;) {
    Client next = MakeClient();
    if (next.Call(request, 1000).ok()) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "slot never released";
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

TEST_F(ServerTest, ShutdownWhileAnotherThreadWaitsDoesNotDeadlock) {
  // Wait() used to hold the lifecycle mutex across the join, so a
  // concurrent Shutdown could never store the stop flag: both threads
  // hung forever. Shutdown must be able to end the loop out from under
  // a parked Wait().
  StartServer();
  std::thread waiter([this] { server_->Wait(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Shutdown(/*drain=*/false);
  waiter.join();
}

TEST_F(ServerTest, DrainTimesOutUnderContinuousLoad) {
  // A peer that floods requests and never reads its responses keeps
  // its write_buffer nonempty, so the quiesce check alone never
  // converges; the drain deadline must bound the loop's lifetime.
  ServerOptions options;
  options.drain_timeout = std::chrono::milliseconds(200);
  StartServer(ServiceOptions{.num_threads = 2}, options);
  int fd = ConnectRaw(server_->port());
  ASSERT_GE(fd, 0);
  WireRequest request;
  request.query = kQuery;
  request.bypass_cache = true;
  std::string wire;
  ASSERT_TRUE(EncodeFrame(
                  FrameHeader{kProtocolVersion, 1,
                              static_cast<uint32_t>(MessageType::kQueryRequest)},
                  EncodeQueryRequest(request), &wire)
                  .ok());
  std::thread spammer([&] {
    // Send and never read, until the server hard-closes the socket.
    while (SendAll(fd, wire)) {
    }
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->GetStats().requests == 0) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "no request ever reached the server";
    std::this_thread::yield();
  }
  server_->RequestDrain();
  server_->Wait();  // must return via the drain deadline, not hang
  spammer.join();
  ::close(fd);
}

TEST_F(ServerTest, MetricsDumpIsTruncatedToTheFrameLimit) {
  // The full dump text is well over this limit; the server must shrink
  // it to something frameable instead of emitting an oversized frame
  // the client's decoder would reject as corruption.
  ServerOptions options;
  options.max_frame_bytes = 512;
  StartServer(ServiceOptions{.num_threads = 2}, options);
  Client client = MakeClient();
  auto metrics = client.FetchMetrics(/*deadline_ms=*/5000);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_LE(metrics->size(), 512u);
  EXPECT_FALSE(metrics->empty());
  // The connection survived and still serves queries.
  WireRequest request;
  request.query = kQuery;
  EXPECT_TRUE(client.Call(request, 5000).ok());
}

TEST(ClientConnectTest, RefusedConnectionFailsWithoutHanging) {
  ClientOptions options;
  options.port = 1;  // nothing listens here
  options.connect_timeout_ms = 2000;
  Client client(options);
  util::Status status = client.Connect();
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(client.connected());
}

TEST_F(ServerTest, ShutdownWithoutDrainIsSafeWithRequestsInFlight) {
  StartServer();
  std::vector<std::thread> callers;
  std::atomic<bool> stop{false};
  for (int i = 0; i < 4; ++i) {
    callers.emplace_back([this, &stop] {
      Client client = MakeClient();
      WireRequest request;
      request.query = kQuery;
      request.bypass_cache = true;
      while (!stop.load(std::memory_order_relaxed)) {
        // Errors (and successes) are equally fine here; the loop only
        // exists to churn connections while the server shuts down.
        util::IgnoreError(
            client.Call(request, /*deadline_ms=*/1000).status());
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server_->Shutdown(/*drain=*/false);  // must not crash or leak callbacks
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& thread : callers) thread.join();
}

}  // namespace
}  // namespace approxql::net
