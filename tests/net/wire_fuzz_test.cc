// Randomized robustness of the frame layer: whatever a hostile or
// broken peer feeds the decoder — truncated frames, flipped bytes
// (including the CRC), valid frames spliced mid-frame, pathological
// chunking — must never crash or hang, and must be rejected at the
// right granularity: a corrupt *stream* poisons only that decoder
// (connection), a short read just waits for more bytes. The corpus
// deliberately covers every message type, including the shard-scoped
// frames (kShardQuery/kShardAnswer/kPing/kPong), so protocol growth
// inherits the same guarantees.
//
// Every adversarial stream this test constructs is ALSO routed through
// fuzz::FuzzFrameDecoder — the shared fuzz/ entry point libFuzzer
// drives under -DAPPROXQL_FUZZ=ON — so the deterministic sweep here and
// the coverage-guided runs exercise identical contract checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fuzz/targets.h"
#include "net/wire.h"
#include "util/random.h"

namespace approxql::net {
namespace {

// Replays an adversarial stream through the shared fuzz entry point
// (first input byte selects the decoder's append-chunk size).
void ReplayThroughFuzzTarget(std::string_view stream, uint8_t chunk = 0xff) {
  std::string input;
  input.push_back(static_cast<char>(chunk));
  input += stream;
  EXPECT_EQ(fuzz::FuzzFrameDecoder(
                reinterpret_cast<const uint8_t*>(input.data()), input.size()),
            0);
}

struct CorpusFrame {
  FrameHeader header;
  std::string payload;
  std::string wire;  // the complete encoded frame
};

// One valid frame of every message type, with payloads exercising the
// real codecs (not just opaque bytes).
std::vector<CorpusFrame> BuildCorpus(util::Rng& rng) {
  std::vector<CorpusFrame> corpus;
  auto add = [&](MessageType type, std::string payload) {
    CorpusFrame frame;
    frame.header.request_id = rng.UniformInt(1, 1u << 30);
    frame.header.type = static_cast<uint32_t>(type);
    frame.payload = std::move(payload);
    EXPECT_TRUE(EncodeFrame(frame.header, frame.payload, &frame.wire).ok());
    corpus.push_back(std::move(frame));
  };

  WireRequest request;
  request.query = "cd[title[\"piano\" and \"concerto\"]]";
  request.n = 10;
  request.deadline_ms = 250;
  add(MessageType::kQueryRequest, EncodeQueryRequest(request));

  WireResponse response;
  response.status_code = 0;
  response.degraded = true;
  response.missing_shards = {1, 3};
  for (int i = 0; i < 20; ++i) {
    response.answers.push_back(
        {static_cast<cost::Cost>(rng.UniformInt(0, 1000)),
         static_cast<doc::NodeId>(rng.UniformInt(1, 100000)),
         static_cast<doc::NodeId>(rng.UniformInt(1, 100))});
  }
  add(MessageType::kQueryResponse, EncodeQueryResponse(response));

  add(MessageType::kMetricsDump, "");
  add(MessageType::kMetricsText, std::string(300, 'm'));

  WireShardQuery shard_query;
  shard_query.query = "name[(name[term] or term) and term]";
  shard_query.n = 25;
  shard_query.cost_bound = 17;
  shard_query.deadline_ms = 1000;
  add(MessageType::kShardQuery, EncodeShardQuery(shard_query));

  WireShardAnswer shard_answer;
  shard_answer.fingerprint = 0xDEADBEEF;
  shard_answer.shard_index = 3;
  shard_answer.achieved_bound = 42;
  for (int i = 0; i < 15; ++i) {
    shard_answer.answers.push_back(
        {static_cast<cost::Cost>(rng.UniformInt(0, 500)),
         static_cast<doc::NodeId>(rng.UniformInt(1, 50000)), 0});
  }
  add(MessageType::kShardAnswer, EncodeShardAnswer(shard_answer));

  add(MessageType::kPing, "");
  add(MessageType::kPong, EncodePong({0xCAFEF00Du, 7u}));
  return corpus;
}

// Drains the decoder, counting frames and noting whether it poisoned.
// Must terminate: every Take returns kFrame (progress), kNeedMore
// (stop), or kError (stop).
struct DrainResult {
  size_t frames = 0;
  bool errored = false;
};
DrainResult Drain(FrameDecoder& decoder) {
  DrainResult result;
  FrameHeader header;
  std::string payload;
  util::Status error;
  for (;;) {
    switch (decoder.Take(&header, &payload, &error)) {
      case FrameDecoder::Next::kFrame:
        ++result.frames;
        break;
      case FrameDecoder::Next::kNeedMore:
        return result;
      case FrameDecoder::Next::kError:
        result.errored = true;
        EXPECT_FALSE(error.ok());
        return result;
    }
  }
}

TEST(WireFuzzTest, TruncationsNeverCrashAndNeverYieldAFrame) {
  util::Rng rng(0xF0F1F2F3);
  for (const CorpusFrame& frame : BuildCorpus(rng)) {
    // Every strict prefix of a single valid frame: either "need more"
    // (short read — the normal torn-frame case) or a clean error when
    // the truncation mangles the length prefix. Never a decoded frame,
    // never a crash.
    for (size_t cut = 0; cut < frame.wire.size(); ++cut) {
      FrameDecoder decoder;
      decoder.Append(frame.wire.data(), cut);
      DrainResult result = Drain(decoder);
      EXPECT_EQ(result.frames, 0u)
          << "truncated frame decoded at cut " << cut;
      if (!result.errored) {
        EXPECT_EQ(decoder.buffered(), cut);  // torn-frame detection at EOF
      }
      ReplayThroughFuzzTarget(std::string_view(frame.wire).substr(0, cut));
    }
  }
}

TEST(WireFuzzTest, FlippedBytesAreRejectedNotCrashed) {
  util::Rng rng(0xAB12CD34);
  std::vector<CorpusFrame> corpus = BuildCorpus(rng);
  size_t rejected = 0;
  for (const CorpusFrame& frame : corpus) {
    for (size_t pos = 0; pos < frame.wire.size(); ++pos) {
      for (uint8_t bit : {uint8_t{1}, uint8_t{0x80}}) {
        std::string corrupted = frame.wire;
        corrupted[pos] = static_cast<char>(corrupted[pos] ^ bit);
        ReplayThroughFuzzTarget(corrupted);
        FrameDecoder decoder;
        decoder.Append(corrupted.data(), corrupted.size());
        DrainResult result = Drain(decoder);
        if (result.errored) {
          ++rejected;
          // Poisoned: even appending a pristine frame yields nothing.
          decoder.Append(frame.wire.data(), frame.wire.size());
          DrainResult after = Drain(decoder);
          EXPECT_EQ(after.frames, 0u) << "poisoned decoder produced a frame";
        } else if (result.frames == 1) {
          // A flip in the 4-byte length prefix can only shrink/grow the
          // frame (caught above as error or need-more); a flip anywhere
          // in body or CRC *must* fail the checksum. So a decoded frame
          // here means the flip landed in the length prefix AND the
          // stream happened to re-frame — impossible for a single
          // frame, since the CRC of the mis-framed body won't match.
          ADD_FAILURE() << "corrupt frame decoded (pos " << pos << ")";
        }
        // Remaining case: need-more — the flip grew the declared length
        // and the decoder is (correctly) waiting for bytes that will
        // eventually fail the CRC.
      }
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST(WireFuzzTest, SplicedPartialFramesPoisonOnlyThatStream) {
  util::Rng rng(0x5EED5EED);
  std::vector<CorpusFrame> corpus = BuildCorpus(rng);
  for (size_t trial = 0; trial < 200; ++trial) {
    const CorpusFrame& a = corpus[rng.UniformInt(0, corpus.size() - 1)];
    const CorpusFrame& b = corpus[rng.UniformInt(0, corpus.size() - 1)];
    // A connection dies mid-frame and its buffer is replayed into the
    // middle of another stream: prefix of A spliced onto all of B.
    size_t cut = rng.UniformInt(1, a.wire.size() - 1);
    std::string spliced = a.wire.substr(0, cut) + b.wire;
    FrameDecoder decoder;
    decoder.Append(spliced.data(), spliced.size());
    DrainResult result = Drain(decoder);
    // The splice point corrupts A's frame; whatever happens next the
    // decoder must not emit more than... zero intact frames: B's bytes
    // land inside A's declared length, so A's CRC check consumes (and
    // fails on) them. Either an error fires or the decoder still waits
    // for the rest of A's declared length.
    EXPECT_EQ(result.frames, 0u) << "spliced stream yielded a frame";
    // A *fresh* decoder (new connection) is unaffected.
    FrameDecoder fresh;
    fresh.Append(b.wire.data(), b.wire.size());
    EXPECT_EQ(Drain(fresh).frames, 1u);
  }
}

TEST(WireFuzzTest, RandomChunkingDeliversEveryFrame) {
  util::Rng rng(0xC0FFEE);
  std::vector<CorpusFrame> corpus = BuildCorpus(rng);
  for (size_t trial = 0; trial < 50; ++trial) {
    // A pipelined stream of the whole corpus in random order...
    std::vector<size_t> order(corpus.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.UniformInt(0, i - 1)]);
    }
    std::string stream;
    for (size_t index : order) stream += corpus[index].wire;
    // ... delivered in random-sized reads must reassemble exactly.
    FrameDecoder decoder;
    size_t offset = 0, frames = 0;
    FrameHeader header;
    std::string payload;
    util::Status error;
    while (offset < stream.size()) {
      size_t chunk = std::min<size_t>(
          rng.UniformInt(1, 97), stream.size() - offset);
      decoder.Append(stream.data() + offset, chunk);
      offset += chunk;
      for (;;) {
        auto next = decoder.Take(&header, &payload, &error);
        if (next != FrameDecoder::Next::kFrame) {
          ASSERT_EQ(next, FrameDecoder::Next::kNeedMore) << error;
          break;
        }
        const CorpusFrame& expected = corpus[order[frames]];
        EXPECT_EQ(header.request_id, expected.header.request_id);
        EXPECT_EQ(header.type, expected.header.type);
        EXPECT_EQ(payload, expected.payload);
        ++frames;
      }
    }
    EXPECT_EQ(frames, corpus.size());
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(WireFuzzTest, RandomGarbageStreamsNeverCrash) {
  util::Rng rng(0xBADBAD);
  for (size_t trial = 0; trial < 300; ++trial) {
    FrameDecoder decoder;
    std::string garbage(rng.UniformInt(1, 512), '\0');
    for (char& c : garbage) {
      c = static_cast<char>(rng.UniformInt(0, 255));
    }
    decoder.Append(garbage.data(), garbage.size());
    Drain(decoder);  // must terminate without crashing; outcome is free
    // Same garbage through the shared entry point, at a torn chunk size
    // so the fuzz target's reassembly path sees it too.
    ReplayThroughFuzzTarget(garbage, static_cast<uint8_t>(trial % 256));
  }
}

// The shard-scoped payload codecs round-trip arbitrary field values —
// the fuzz corpus above only proves the frame layer; this pins the
// payload layer the router depends on for correctness.
TEST(WireFuzzTest, ShardPayloadCodecsRoundTripRandomized) {
  util::Rng rng(0x51AB51AB);
  for (size_t trial = 0; trial < 200; ++trial) {
    WireShardQuery query;
    query.query = std::string(rng.UniformInt(0, 64), 'q');
    query.strategy = rng.UniformInt(0, 1) == 0 ? engine::Strategy::kSchema
                                               : engine::Strategy::kDirect;
    query.n = rng.UniformInt(0, 2) == 0 ? UINT64_MAX : rng.UniformInt(0, 1000);
    query.cost_bound = rng.UniformInt(0, 2) == 0
                           ? cost::kInfinite
                           : static_cast<cost::Cost>(rng.UniformInt(0, 1u << 20));
    query.deadline_ms = static_cast<int64_t>(rng.UniformInt(0, 100000));
    WireShardQuery query_out;
    ASSERT_TRUE(DecodeShardQuery(EncodeShardQuery(query), &query_out).ok());
    EXPECT_EQ(query_out.query, query.query);
    EXPECT_EQ(query_out.strategy, query.strategy);
    EXPECT_EQ(query_out.n, query.n);
    EXPECT_EQ(query_out.cost_bound, query.cost_bound);
    EXPECT_EQ(query_out.deadline_ms, query.deadline_ms);

    WireShardAnswer answer;
    answer.status_code = rng.UniformInt(0, 12);
    answer.status_message = std::string(rng.UniformInt(0, 32), 'e');
    answer.fingerprint = static_cast<uint32_t>(rng.UniformInt(0, UINT32_MAX));
    answer.shard_index = rng.UniformInt(0, 63);
    answer.achieved_bound =
        rng.UniformInt(0, 2) == 0
            ? cost::kInfinite
            : static_cast<cost::Cost>(rng.UniformInt(0, 1u << 20));
    answer.truncated = rng.UniformInt(0, 1) == 1;
    for (size_t i = rng.UniformInt(0, 20); i > 0; --i) {
      answer.answers.push_back(
          {static_cast<cost::Cost>(rng.UniformInt(0, 1u << 16)),
           static_cast<doc::NodeId>(rng.UniformInt(0, 1u << 24)), 0});
    }
    WireShardAnswer answer_out;
    ASSERT_TRUE(DecodeShardAnswer(EncodeShardAnswer(answer), &answer_out).ok());
    EXPECT_EQ(answer_out.status_code, answer.status_code);
    EXPECT_EQ(answer_out.status_message, answer.status_message);
    EXPECT_EQ(answer_out.fingerprint, answer.fingerprint);
    EXPECT_EQ(answer_out.shard_index, answer.shard_index);
    EXPECT_EQ(answer_out.achieved_bound, answer.achieved_bound);
    EXPECT_EQ(answer_out.truncated, answer.truncated);
    ASSERT_EQ(answer_out.answers.size(), answer.answers.size());
    for (size_t i = 0; i < answer.answers.size(); ++i) {
      EXPECT_EQ(answer_out.answers[i].cost, answer.answers[i].cost);
      EXPECT_EQ(answer_out.answers[i].root, answer.answers[i].root);
    }

    WirePong pong{static_cast<uint32_t>(rng.UniformInt(0, UINT32_MAX)),
                  static_cast<uint32_t>(rng.UniformInt(0, 63))};
    WirePong pong_out;
    ASSERT_TRUE(DecodePong(EncodePong(pong), &pong_out).ok());
    EXPECT_EQ(pong_out.fingerprint, pong.fingerprint);
    EXPECT_EQ(pong_out.shard_index, pong.shard_index);
  }
}

}  // namespace
}  // namespace approxql::net
