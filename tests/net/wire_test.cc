#include "net/wire.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "util/crc32.h"
#include "util/random.h"

namespace approxql::net {
namespace {

FrameHeader MakeHeader(uint64_t request_id, MessageType type) {
  return FrameHeader{kProtocolVersion, request_id,
                     static_cast<uint32_t>(type)};
}

TEST(FrameTest, RoundTripSingleFrame) {
  std::string wire;
  ASSERT_TRUE(
      EncodeFrame(MakeHeader(42, MessageType::kQueryRequest), "hello", &wire)
          .ok());
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  FrameHeader header;
  std::string payload;
  util::Status error;
  ASSERT_EQ(decoder.Take(&header, &payload, &error),
            FrameDecoder::Next::kFrame);
  EXPECT_EQ(header.version, kProtocolVersion);
  EXPECT_EQ(header.request_id, 42u);
  EXPECT_EQ(header.type, static_cast<uint32_t>(MessageType::kQueryRequest));
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(decoder.Take(&header, &payload, &error),
            FrameDecoder::Next::kNeedMore);
  EXPECT_EQ(decoder.buffered(), 0u);
}

TEST(FrameTest, EmptyPayloadFrame) {
  std::string wire;
  ASSERT_TRUE(
      EncodeFrame(MakeHeader(0, MessageType::kMetricsDump), "", &wire).ok());
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  FrameHeader header;
  std::string payload;
  util::Status error;
  ASSERT_EQ(decoder.Take(&header, &payload, &error),
            FrameDecoder::Next::kFrame);
  EXPECT_TRUE(payload.empty());
}

TEST(FrameTest, ByteAtATimeDelivery) {
  // The decoder must reassemble a frame no matter how the TCP stream
  // fragments it — the worst case is one byte per read.
  std::string wire;
  std::string big_payload(1000, 'x');
  ASSERT_TRUE(
      EncodeFrame(MakeHeader(7, MessageType::kQueryResponse), big_payload,
                  &wire)
          .ok());
  FrameDecoder decoder;
  FrameHeader header;
  std::string payload;
  util::Status error;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Append(&wire[i], 1);
    ASSERT_EQ(decoder.Take(&header, &payload, &error),
              FrameDecoder::Next::kNeedMore)
        << "frame complete after only " << i + 1 << " bytes";
  }
  decoder.Append(&wire[wire.size() - 1], 1);
  ASSERT_EQ(decoder.Take(&header, &payload, &error),
            FrameDecoder::Next::kFrame);
  EXPECT_EQ(payload, big_payload);
}

TEST(FrameTest, MultipleFramesPerRead) {
  std::string wire;
  for (uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(EncodeFrame(MakeHeader(id, MessageType::kQueryRequest),
                            "payload" + std::to_string(id), &wire)
                    .ok());
  }
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  for (uint64_t id = 1; id <= 5; ++id) {
    FrameHeader header;
    std::string payload;
    util::Status error;
    ASSERT_EQ(decoder.Take(&header, &payload, &error),
              FrameDecoder::Next::kFrame);
    EXPECT_EQ(header.request_id, id);
    EXPECT_EQ(payload, "payload" + std::to_string(id));
  }
}

TEST(FrameTest, RandomizedSplitRoundTrip) {
  util::Rng rng(20020802);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::string> payloads;
    std::string wire;
    const size_t frames = 1 + rng.Uniform(4);
    for (size_t f = 0; f < frames; ++f) {
      std::string payload(rng.Uniform(300), '\0');
      for (char& c : payload) c = static_cast<char>(rng.Uniform(256));
      ASSERT_TRUE(EncodeFrame(MakeHeader(f, MessageType::kQueryResponse),
                              payload, &wire)
                      .ok());
      payloads.push_back(std::move(payload));
    }
    FrameDecoder decoder;
    size_t delivered = 0, taken = 0;
    while (taken < frames) {
      if (delivered < wire.size()) {
        size_t chunk = 1 + rng.Uniform(64);
        chunk = std::min(chunk, wire.size() - delivered);
        decoder.Append(wire.data() + delivered, chunk);
        delivered += chunk;
      }
      FrameHeader header;
      std::string payload;
      util::Status error;
      FrameDecoder::Next next = decoder.Take(&header, &payload, &error);
      ASSERT_NE(next, FrameDecoder::Next::kError) << error;
      if (next == FrameDecoder::Next::kFrame) {
        ASSERT_LT(taken, payloads.size());
        EXPECT_EQ(header.request_id, taken);
        EXPECT_EQ(payload, payloads[taken]);
        ++taken;
      }
    }
    EXPECT_EQ(decoder.buffered(), 0u);
  }
}

TEST(FrameTest, CorruptedByteFailsCrc) {
  std::string wire;
  ASSERT_TRUE(
      EncodeFrame(MakeHeader(9, MessageType::kQueryRequest), "payload", &wire)
          .ok());
  wire[6] = static_cast<char>(wire[6] ^ 0x40);  // flip a bit inside the body
  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  FrameHeader header;
  std::string payload;
  util::Status error;
  ASSERT_EQ(decoder.Take(&header, &payload, &error),
            FrameDecoder::Next::kError);
  EXPECT_TRUE(error.IsCorruption());
  // Poisoned: even valid bytes afterwards don't resurrect the stream.
  std::string good;
  ASSERT_TRUE(
      EncodeFrame(MakeHeader(10, MessageType::kQueryRequest), "x", &good)
          .ok());
  decoder.Append(good.data(), good.size());
  EXPECT_EQ(decoder.Take(&header, &payload, &error),
            FrameDecoder::Next::kError);
}

TEST(FrameTest, EncodeRejectsBodyOverFrameLimit) {
  // The sender must enforce the same bound the receiver does — an
  // oversized frame on the wire would poison the peer's decoder.
  std::string wire;
  std::string payload(2000, 'x');
  util::Status status =
      EncodeFrame(MakeHeader(1, MessageType::kQueryResponse), payload, &wire,
                  /*max_frame_bytes=*/1024);
  EXPECT_TRUE(status.IsResourceExhausted()) << status;
  EXPECT_TRUE(wire.empty()) << "failed encode must not emit partial bytes";

  // Just under the limit still encodes and decodes.
  std::string small(900, 'x');
  ASSERT_TRUE(EncodeFrame(MakeHeader(2, MessageType::kQueryResponse), small,
                          &wire, /*max_frame_bytes=*/1024)
                  .ok());
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  decoder.Append(wire.data(), wire.size());
  FrameHeader header;
  std::string decoded;
  util::Status error;
  ASSERT_EQ(decoder.Take(&header, &decoded, &error),
            FrameDecoder::Next::kFrame);
  EXPECT_EQ(decoded, small);
}

TEST(FrameTest, OversizedLengthRejectedBeforeBuffering) {
  FrameDecoder decoder(/*max_frame_bytes=*/1024);
  // A 4-byte prefix claiming 1 MiB must fail immediately — the decoder
  // must not wait for a megabyte that may never come.
  const uint32_t huge = 1u << 20;
  char prefix[4] = {static_cast<char>(huge & 0xff),
                    static_cast<char>((huge >> 8) & 0xff),
                    static_cast<char>((huge >> 16) & 0xff),
                    static_cast<char>((huge >> 24) & 0xff)};
  decoder.Append(prefix, sizeof(prefix));
  FrameHeader header;
  std::string payload;
  util::Status error;
  ASSERT_EQ(decoder.Take(&header, &payload, &error),
            FrameDecoder::Next::kError);
  EXPECT_TRUE(error.IsCorruption());
}

TEST(FrameTest, UndersizedLengthRejected) {
  FrameDecoder decoder;
  const char prefix[4] = {2, 0, 0, 0};  // body smaller than any header
  decoder.Append(prefix, sizeof(prefix));
  FrameHeader header;
  std::string payload;
  util::Status error;
  EXPECT_EQ(decoder.Take(&header, &payload, &error),
            FrameDecoder::Next::kError);
}

TEST(FrameTest, WrongProtocolVersionRejected) {
  // Hand-build a frame with version 99 and a valid CRC.
  std::string body;
  body.push_back(99);  // version varint
  body.push_back(1);   // request id
  body.push_back(1);   // type
  std::string wire;
  const uint32_t length = static_cast<uint32_t>(body.size() + 4);
  wire.push_back(static_cast<char>(length & 0xff));
  wire.push_back(static_cast<char>((length >> 8) & 0xff));
  wire.push_back(static_cast<char>((length >> 16) & 0xff));
  wire.push_back(static_cast<char>((length >> 24) & 0xff));
  wire += body;
  const uint32_t crc = util::Crc32c(body);
  wire.push_back(static_cast<char>(crc & 0xff));
  wire.push_back(static_cast<char>((crc >> 8) & 0xff));
  wire.push_back(static_cast<char>((crc >> 16) & 0xff));
  wire.push_back(static_cast<char>((crc >> 24) & 0xff));

  FrameDecoder decoder;
  decoder.Append(wire.data(), wire.size());
  FrameHeader header;
  std::string payload;
  util::Status error;
  ASSERT_EQ(decoder.Take(&header, &payload, &error),
            FrameDecoder::Next::kError);
  EXPECT_NE(error.message().find("version"), std::string::npos);
}

TEST(PayloadTest, QueryRequestRoundTrip) {
  WireRequest request;
  request.query = R"(cd[title["piano" and "concerto"]])";
  request.strategy = engine::Strategy::kDirect;
  request.n = std::numeric_limits<uint64_t>::max();  // "all results"
  request.parallelism = 8;
  request.deadline_ms = -1;  // negative deadlines must survive (tests)
  request.bypass_cache = true;

  WireRequest decoded;
  ASSERT_TRUE(DecodeQueryRequest(EncodeQueryRequest(request), &decoded).ok());
  EXPECT_EQ(decoded.query, request.query);
  EXPECT_EQ(decoded.strategy, request.strategy);
  EXPECT_EQ(decoded.n, request.n);
  EXPECT_EQ(decoded.parallelism, request.parallelism);
  EXPECT_EQ(decoded.deadline_ms, request.deadline_ms);
  EXPECT_EQ(decoded.bypass_cache, request.bypass_cache);
}

TEST(PayloadTest, QueryResponseRoundTrip) {
  WireResponse response;
  response.status_code = static_cast<uint32_t>(util::StatusCode::kOk);
  response.truncated = true;
  response.cache_hit = false;
  response.answers = {{0, 5, 1}, {17, 123456, 99}, {-3, 7, 7}};

  WireResponse decoded;
  ASSERT_TRUE(
      DecodeQueryResponse(EncodeQueryResponse(response), &decoded).ok());
  EXPECT_EQ(decoded.status_code, response.status_code);
  EXPECT_TRUE(decoded.truncated);
  EXPECT_FALSE(decoded.cache_hit);
  ASSERT_EQ(decoded.answers.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(decoded.answers[i].cost, response.answers[i].cost);
    EXPECT_EQ(decoded.answers[i].root, response.answers[i].root);
    EXPECT_EQ(decoded.answers[i].doc, response.answers[i].doc);
  }
}

TEST(PayloadTest, TruncatedRequestPayloadFails) {
  WireRequest request;
  request.query = "cd[title]";
  std::string payload = EncodeQueryRequest(request);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    WireRequest decoded;
    EXPECT_FALSE(
        DecodeQueryRequest(payload.substr(0, cut), &decoded).ok())
        << "decoded from only " << cut << " bytes";
  }
}

TEST(PayloadTest, BadStrategyRejected) {
  std::string payload;
  payload.push_back(2);  // query length 2
  payload += "ab";
  payload.push_back(77);  // strategy 77: not a Strategy
  payload.push_back(1);   // n
  payload.push_back(0);   // parallelism
  payload.push_back(0);   // deadline
  payload.push_back(0);   // bypass
  WireRequest decoded;
  util::Status status = DecodeQueryRequest(payload, &decoded);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.message().find("strategy"), std::string::npos);
}

TEST(PayloadTest, AnswerCountOverrunRejected) {
  // A response claiming a billion answers in a 10-byte payload must be
  // rejected by arithmetic, not by allocating a billion entries.
  std::string payload;
  payload.push_back(0);  // status ok
  payload.push_back(0);  // empty message
  payload.push_back(0);  // flags
  // count = 1e9 as varint
  uint64_t count = 1000000000;
  while (count >= 0x80) {
    payload.push_back(static_cast<char>(count | 0x80));
    count >>= 7;
  }
  payload.push_back(static_cast<char>(count));
  payload += "xy";
  WireResponse decoded;
  util::Status status = DecodeQueryResponse(payload, &decoded);
  EXPECT_TRUE(status.IsCorruption());
}

TEST(PayloadTest, RandomizedResponseRoundTrip) {
  util::Rng rng(77);
  for (int trial = 0; trial < 100; ++trial) {
    WireResponse response;
    response.status_code = static_cast<uint32_t>(rng.Uniform(11));
    response.status_message = std::string(rng.Uniform(40), 'm');
    response.truncated = rng.Uniform(2) == 1;
    response.cache_hit = rng.Uniform(2) == 1;
    const size_t answers = rng.Uniform(50);
    for (size_t i = 0; i < answers; ++i) {
      WireAnswer answer;
      answer.cost = rng.UniformInt(-1000000, 1000000);
      answer.root = static_cast<doc::NodeId>(rng.Next() & 0xffffffff);
      answer.doc = static_cast<doc::NodeId>(rng.Next() & 0xffffffff);
      response.answers.push_back(answer);
    }
    WireResponse decoded;
    ASSERT_TRUE(
        DecodeQueryResponse(EncodeQueryResponse(response), &decoded).ok());
    EXPECT_EQ(decoded.status_code, response.status_code);
    EXPECT_EQ(decoded.status_message, response.status_message);
    ASSERT_EQ(decoded.answers.size(), response.answers.size());
    for (size_t i = 0; i < response.answers.size(); ++i) {
      EXPECT_EQ(decoded.answers[i].cost, response.answers[i].cost);
      EXPECT_EQ(decoded.answers[i].root, response.answers[i].root);
      EXPECT_EQ(decoded.answers[i].doc, response.answers[i].doc);
    }
  }
}

}  // namespace
}  // namespace approxql::net
