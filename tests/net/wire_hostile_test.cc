// Hostile count-field tests: every wire decoder with a repeated section
// must reject a claimed element count that overruns the remaining payload
// BEFORE sizing any container. A few varint bytes must never drive a
// multi-gigabyte reserve(). Payloads are hand-built to match the encoder
// layouts in src/net/wire.cc.

#include <cstdint>
#include <string>

#include "gtest/gtest.h"
#include "net/wire.h"
#include "util/varint.h"

namespace approxql::net {
namespace {

// Large enough that a missing cap would request ~terabytes from the
// allocator; small enough to be a valid varint64.
constexpr uint64_t kHugeCount = uint64_t{1} << 40;

void PutString(std::string* out, std::string_view s) {
  util::PutVarint64(out, s.size());
  out->append(s);
}

TEST(WireHostileTest, QueryRequestHugeMinEpochCount) {
  std::string payload;
  PutString(&payload, "a");                // query
  util::PutVarint32(&payload, 1);          // strategy = kSchema
  util::PutVarint64(&payload, 10);         // n
  util::PutVarint32(&payload, 1);          // parallelism
  util::PutVarint64(&payload, 0);          // deadline (zigzag 0)
  util::PutVarint32(&payload, 0);          // bypass_cache
  util::PutVarint64(&payload, kHugeCount); // min_epochs count, no elements
  WireRequest out;
  util::Status st = DecodeQueryRequest(payload, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overruns"), std::string::npos) << st.message();
}

TEST(WireHostileTest, QueryResponseHugeMissingShardCount) {
  std::string payload;
  util::PutVarint32(&payload, 0);          // status_code
  PutString(&payload, "");                 // status_message
  util::PutVarint32(&payload, 0);          // flags
  util::PutVarint64(&payload, kHugeCount); // missing_shards count
  WireResponse out;
  util::Status st = DecodeQueryResponse(payload, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overruns"), std::string::npos) << st.message();
}

TEST(WireHostileTest, QueryResponseHugeAnswerCount) {
  std::string payload;
  util::PutVarint32(&payload, 0);          // status_code
  PutString(&payload, "");                 // status_message
  util::PutVarint32(&payload, 0);          // flags
  util::PutVarint64(&payload, 0);          // missing_shards count
  util::PutVarint64(&payload, 7);          // backend_epoch
  util::PutVarint64(&payload, kHugeCount); // answer count, no answers
  WireResponse out;
  util::Status st = DecodeQueryResponse(payload, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overruns"), std::string::npos) << st.message();
}

// A count that fits the cap but not the payload must still fail cleanly
// on the element reads (truncation), not overrun.
TEST(WireHostileTest, QueryResponseCountJustPastPayload) {
  std::string payload;
  util::PutVarint32(&payload, 0);
  PutString(&payload, "");
  util::PutVarint32(&payload, 0);
  util::PutVarint64(&payload, 0);
  util::PutVarint64(&payload, 7);
  util::PutVarint64(&payload, 2);  // claims 2 answers...
  util::PutVarint64(&payload, 0);  // ...supplies 1 (cost, root, doc)
  util::PutVarint32(&payload, 1);
  util::PutVarint32(&payload, 1);
  WireResponse out;
  EXPECT_FALSE(DecodeQueryResponse(payload, &out).ok());
}

TEST(WireHostileTest, ShardAnswerHugeAnswerCount) {
  std::string payload;
  util::PutVarint32(&payload, 0);          // status_code
  PutString(&payload, "");                 // status_message
  util::PutVarint32(&payload, 0);          // fingerprint
  util::PutVarint32(&payload, 0);          // shard_index
  util::PutVarint64(&payload, 0);          // achieved_bound (zigzag 0)
  util::PutVarint32(&payload, 0);          // flags
  util::PutVarint64(&payload, 0);          // backend_epoch
  util::PutVarint64(&payload, kHugeCount); // answer count, no answers
  WireShardAnswer out;
  util::Status st = DecodeShardAnswer(payload, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overruns"), std::string::npos) << st.message();
}

TEST(WireHostileTest, ManifestSliceHugeSpanCount) {
  std::string payload;
  util::PutVarint32(&payload, 0);          // status_code
  PutString(&payload, "");                 // status_message
  util::PutVarint32(&payload, 0);          // shard_index
  util::PutVarint64(&payload, 0);          // epoch
  util::PutVarint32(&payload, 0);          // fingerprint
  util::PutVarint64(&payload, kHugeCount); // span count, no spans
  WireManifestSlice out;
  util::Status st = DecodeManifestSlice(payload, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("overruns"), std::string::npos) << st.message();
}

// Length-prefixed strings share one helper; a huge claimed length must be
// rejected against the remaining bytes (here: the query string field).
TEST(WireHostileTest, QueryRequestHugeStringLength) {
  std::string payload;
  util::PutVarint64(&payload, kHugeCount);  // query length, 1 byte follows
  payload.push_back('a');
  WireRequest out;
  EXPECT_FALSE(DecodeQueryRequest(payload, &out).ok());
}

}  // namespace
}  // namespace approxql::net
