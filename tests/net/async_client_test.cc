// The multiplexed transport under the shard router: many outstanding
// request-ids on one connection, per-call deadlines that do not kill
// the connection, connection loss failing exactly the written
// requests, automatic reconnection, and clean shutdown semantics.
#include "net/async_client.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace approxql::net {
namespace {

using engine::Database;
using service::QueryService;
using service::ServiceOptions;

Database MakeDb() {
  cost::CostModel model;
  model.SetRenameCost(NodeType::kText, "concerto", "variations", 3);
  model.SetDeleteCost(NodeType::kText, "piano", 5);
  auto db = Database::BuildFromXml(
      {"<catalog><cd><title>piano concerto</title>"
       "<composer>rachmaninov</composer></cd></catalog>",
       "<catalog><cd><title>goldberg variations</title>"
       "<composer>bach</composer></cd></catalog>"},
      std::move(model));
  APPROXQL_CHECK(db.ok()) << db.status();
  return std::move(db).value();
}

constexpr char kQuery[] = R"(cd[title["piano" and "concerto"]])";

/// Blocks a test thread until N callbacks have fired (callbacks run on
/// the client's IO thread). GTest-safe: assertions happen on the test
/// thread after Wait.
class Completions {
 public:
  explicit Completions(size_t expected) : expected_(expected) {}

  AsyncCallback Collector() {
    return [this](util::Result<std::pair<FrameHeader, std::string>> result) {
      util::MutexLock lock(&mu_);
      results_.push_back(std::move(result));
      if (results_.size() >= expected_) cv_.NotifyAll();
    };
  }

  bool WaitFor(std::chrono::milliseconds timeout) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    util::MutexLock lock(&mu_);
    while (results_.size() < expected_) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return false;
      cv_.WaitFor(&mu_, deadline - now);
    }
    return true;
  }

  std::vector<util::Result<std::pair<FrameHeader, std::string>>> Take() {
    util::MutexLock lock(&mu_);
    return std::move(results_);
  }

 private:
  const size_t expected_;
  util::Mutex mu_;
  util::CondVar cv_;
  std::vector<util::Result<std::pair<FrameHeader, std::string>>> results_
      GUARDED_BY(mu_);
};

class AsyncClientTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions server_options = {}) {
    db_ = std::make_unique<Database>(MakeDb());
    service_ = std::make_unique<QueryService>(
        *db_, ServiceOptions{.num_threads = 2});
    server_ = std::make_unique<Server>(*service_, *db_, server_options);
    auto started = server_->Start();
    ASSERT_TRUE(started.ok()) << started;
  }

  void StopServer() {
    if (server_) server_->Shutdown(/*drain=*/false);
    server_.reset();
    service_.reset();
  }

  void TearDown() override { StopServer(); }

  std::unique_ptr<AsyncClient> MakeClient(uint16_t port) {
    AsyncClientOptions options;
    options.port = port;
    options.connect_timeout_ms = 2000;
    options.reconnect_backoff_ms = 5;
    options.reconnect_backoff_cap_ms = 40;
    auto client = std::make_unique<AsyncClient>(options);
    auto started = client->Start();
    EXPECT_TRUE(started.ok()) << started;
    return client;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(AsyncClientTest, ManyOutstandingRequestsOneConnection) {
  StartServer();
  auto client = MakeClient(server_->port());
  constexpr size_t kCalls = 64;
  Completions completions(kCalls);
  WireRequest request;
  request.query = kQuery;
  const std::string payload = EncodeQueryRequest(request);
  // All 64 submitted before any completes: they share the single
  // connection and pipeline by request-id.
  for (size_t i = 0; i < kCalls; ++i) {
    client->Call(MessageType::kQueryRequest, payload, /*deadline_ms=*/5000,
                 completions.Collector());
  }
  ASSERT_TRUE(completions.WaitFor(std::chrono::seconds(10)));
  size_t ok = 0;
  for (auto& result : completions.Take()) {
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_EQ(result->first.type,
              static_cast<uint32_t>(MessageType::kQueryResponse));
    WireResponse response;
    ASSERT_TRUE(DecodeQueryResponse(result->second, &response).ok());
    EXPECT_EQ(response.status_code, 0u);
    EXPECT_FALSE(response.answers.empty());
    ++ok;
  }
  EXPECT_EQ(ok, kCalls);
  auto stats = client->stats();
  EXPECT_EQ(stats.sent, kCalls);
  EXPECT_EQ(stats.completed, kCalls);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.reconnects, 0u);
}

TEST_F(AsyncClientTest, DeadlineFailsOnlyThatCallConnectionSurvives) {
  StartServer();
  auto client = MakeClient(server_->port());
  // An already-expired server-side deadline: the server answers
  // DEADLINE_EXCEEDED quickly, but a 1ms *client* deadline on a healthy
  // call is the real subject — use an unreachable port instead for
  // determinism: nothing ever connects, so the deadline must fire.
  AsyncClientOptions dead_options;
  dead_options.port = 1;  // reserved port, nothing listening
  dead_options.connect_timeout_ms = 10000;
  AsyncClient dead(dead_options);
  ASSERT_TRUE(dead.Start().ok());
  Completions timed_out(1);
  dead.Call(MessageType::kQueryRequest, "x", /*deadline_ms=*/100,
            timed_out.Collector());
  ASSERT_TRUE(timed_out.WaitFor(std::chrono::seconds(5)));
  auto results = timed_out.Take();
  ASSERT_FALSE(results[0].ok());
  EXPECT_TRUE(results[0].status().IsDeadlineExceeded())
      << results[0].status();
  EXPECT_EQ(dead.stats().timed_out, 1u);
  dead.Shutdown();

  // The healthy client is unaffected and still serves calls.
  Completions after(1);
  WireRequest request;
  request.query = kQuery;
  client->Call(MessageType::kQueryRequest, EncodeQueryRequest(request), 5000,
               after.Collector());
  ASSERT_TRUE(after.WaitFor(std::chrono::seconds(5)));
  EXPECT_TRUE(after.Take()[0].ok());
}

TEST_F(AsyncClientTest, ConnectionLossFailsWrittenRequestsThenReconnects) {
  StartServer();
  const uint16_t port = server_->port();
  auto client = MakeClient(port);

  Completions first(1);
  WireRequest request;
  request.query = kQuery;
  const std::string payload = EncodeQueryRequest(request);
  client->Call(MessageType::kQueryRequest, payload, 5000, first.Collector());
  ASSERT_TRUE(first.WaitFor(std::chrono::seconds(5)));
  ASSERT_TRUE(first.Take()[0].ok());

  // Kill the server: the established connection dies. In-flight calls
  // (written bytes) must fail kUnavailable-ish, quickly — not hang.
  StopServer();
  Completions during(1);
  client->Call(MessageType::kQueryRequest, payload, /*deadline_ms=*/3000,
               during.Collector());
  ASSERT_TRUE(during.WaitFor(std::chrono::seconds(10)));
  auto failed = during.Take();
  ASSERT_FALSE(failed[0].ok());

  // Bring a fresh server up on the same port: the client's backoff loop
  // finds it and later calls succeed; stats record the reconnect.
  ServerOptions reuse;
  reuse.port = port;
  StartServer(reuse);
  bool ok = false;
  for (int attempt = 0; attempt < 40 && !ok; ++attempt) {
    Completions retry(1);
    client->Call(MessageType::kQueryRequest, payload, 1000,
                 retry.Collector());
    ASSERT_TRUE(retry.WaitFor(std::chrono::seconds(5)));
    ok = retry.Take()[0].ok();
  }
  EXPECT_TRUE(ok) << "client never recovered after server restart";
  EXPECT_GE(client->stats().reconnects, 1u);
}

TEST_F(AsyncClientTest, ShutdownFailsOutstandingAndLaterCallsInline) {
  // No server at all: calls queue against the connect/backoff cycle.
  AsyncClientOptions options;
  options.port = 1;
  AsyncClient client(options);
  ASSERT_TRUE(client.Start().ok());
  Completions pending(3);
  for (int i = 0; i < 3; ++i) {
    client.Call(MessageType::kQueryRequest, "x", /*deadline_ms=*/0,
                pending.Collector());
  }
  client.Shutdown();  // joins the IO thread; callbacks fired first
  ASSERT_TRUE(pending.WaitFor(std::chrono::seconds(1)));
  for (auto& result : pending.Take()) {
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().IsUnavailable()) << result.status();
  }
  // After Shutdown the callback runs inline, still exactly once.
  std::atomic<int> inline_calls{0};
  client.Call(MessageType::kQueryRequest, "x", 0,
              [&](util::Result<std::pair<FrameHeader, std::string>> result) {
                EXPECT_FALSE(result.ok());
                inline_calls.fetch_add(1);
              });
  EXPECT_EQ(inline_calls.load(), 1);
}

TEST_F(AsyncClientTest, PingAgainstShardServingServer) {
  ServerOptions options;
  options.shard.enabled = true;
  options.shard.fingerprint = 0xFEEDFACE;
  options.shard.shard_index = 2;
  StartServer(options);
  auto client = MakeClient(server_->port());
  Completions completions(1);
  client->Call(MessageType::kPing, "", 2000, completions.Collector());
  ASSERT_TRUE(completions.WaitFor(std::chrono::seconds(5)));
  auto results = completions.Take();
  ASSERT_TRUE(results[0].ok()) << results[0].status();
  ASSERT_EQ(results[0]->first.type, static_cast<uint32_t>(MessageType::kPong));
  WirePong pong;
  ASSERT_TRUE(DecodePong(results[0]->second, &pong).ok());
  EXPECT_EQ(pong.fingerprint, 0xFEEDFACEu);
  EXPECT_EQ(pong.shard_index, 2u);
}

}  // namespace
}  // namespace approxql::net
