// Live ingest over the wire: kIngest/kIngestAck against a Server
// fronting a MutableCorpus, interleaved with verified queries. The ack
// contract under test: an OK ack means the mutation is durable AND
// visible (any later query's backend_epoch >= the ack's epoch sees it),
// a non-OK ack means nothing happened, and a plain immutable server
// nacks with UNIMPLEMENTED instead of dropping the frame.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "engine/database.h"
#include "ingest/mutable_corpus.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "storage/kv_factory.h"

namespace approxql::net {
namespace {

using engine::Strategy;
using ingest::MutableCorpus;
using service::QueryService;
using service::ServiceOptions;

constexpr char kQuery[] = R"(elem1[elem3 and "term2"])";

cost::CostModel TestModel() {
  cost::CostModel model;
  for (int i = 0; i < 10; ++i) {
    model.SetDeleteCost(NodeType::kStruct, "elem" + std::to_string(i),
                        static_cast<cost::Cost>(2 + (i * 3) % 7));
    model.SetDeleteCost(NodeType::kText, "term" + std::to_string(i),
                        static_cast<cost::Cost>(1 + (i * 5) % 6));
  }
  return model;
}

std::string MakeDoc(size_t i) {
  const std::string a = "elem" + std::to_string(i % 5);
  const std::string b = "elem" + std::to_string((i + 2) % 6);
  const std::string t1 = "term" + std::to_string(i % 7);
  const std::string t2 = "term" + std::to_string((i + 3) % 8);
  return "<" + a + "><" + b + ">" + t1 + "</" + b + "><elem3>" + t2 +
         "</elem3></" + a + ">";
}

class IngestWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("approxql_ingest_wire_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void StartMutableServer(size_t num_shards = 2) {
    MutableCorpus::Options options;
    options.data_dir = dir_;
    options.num_shards = num_shards;
    options.model = TestModel();
    auto corpus = MutableCorpus::Open(std::move(options));
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    corpus_ = std::move(corpus).value();
    service_ = std::make_unique<QueryService>(*corpus_,
                                              ServiceOptions{.num_threads = 2});
    server_ = std::make_unique<Server>(*service_, *corpus_, ServerOptions{});
    auto started = server_->Start();
    ASSERT_TRUE(started.ok()) << started;
  }

  void TearDown() override {
    if (server_) server_->Shutdown(/*drain=*/true);
    server_.reset();
    service_.reset();
    corpus_.reset();
    std::filesystem::remove_all(dir_);
  }

  Client MakeClient() {
    ClientOptions options;
    options.port = server_->port();
    return Client(options);
  }

  std::string dir_;
  std::unique_ptr<MutableCorpus> corpus_;
  std::unique_ptr<QueryService> service_;
  std::unique_ptr<Server> server_;
};

TEST_F(IngestWireTest, InterleavedIngestAndQueriesMatchTheOracle) {
  StartMutableServer();
  Client client = MakeClient();
  std::vector<std::string> acked;
  uint64_t last_epoch = 0;
  for (size_t i = 0; i < 10; ++i) {
    WireIngest op;
    op.op = WireIngest::Op::kAdd;
    op.xml = MakeDoc(i);
    auto ack = client.Ingest(op);
    ASSERT_TRUE(ack.ok()) << ack.status();
    acked.push_back(op.xml);
    EXPECT_EQ(ack->epoch, last_epoch + 1);
    last_epoch = ack->epoch;
    EXPECT_GT(ack->length, 0u);

    // Query between ingests: the ack said "visible", so the response
    // epoch may never lag the ack's.
    WireRequest request;
    request.query = kQuery;
    request.n = UINT64_MAX;
    auto response = client.Call(request);
    ASSERT_TRUE(response.ok()) << response.status();
    EXPECT_GE(response->backend_epoch, ack->epoch);

    // And the answers are bit-identical to an in-process oracle over
    // exactly the acked documents.
    auto oracle = engine::Database::BuildFromXml(acked, TestModel());
    ASSERT_TRUE(oracle.ok());
    engine::ExecOptions exec;
    exec.n = SIZE_MAX;
    auto want = oracle->Execute(kQuery, exec);
    ASSERT_TRUE(want.ok());
    ASSERT_EQ(response->answers.size(), want->size()) << "after doc " << i;
    for (size_t a = 0; a < want->size(); ++a) {
      EXPECT_EQ(response->answers[a].root, (*want)[a].root);
      EXPECT_EQ(response->answers[a].cost, (*want)[a].cost);
    }
  }
}

TEST_F(IngestWireTest, RemoveOverTheWire) {
  StartMutableServer();
  Client client = MakeClient();
  std::vector<doc::NodeId> roots;
  for (size_t i = 0; i < 3; ++i) {
    WireIngest op;
    op.op = WireIngest::Op::kAdd;
    op.xml = MakeDoc(i);
    auto ack = client.Ingest(op);
    ASSERT_TRUE(ack.ok()) << ack.status();
    roots.push_back(ack->doc_root);
  }
  WireIngest remove;
  remove.op = WireIngest::Op::kRemove;
  remove.doc_root = roots[1];
  auto ack = client.Ingest(remove);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->doc_root, roots[1]);

  WireRequest request;
  request.query = kQuery;
  request.n = UINT64_MAX;
  auto response = client.Call(request);
  ASSERT_TRUE(response.ok());
  for (const auto& answer : response->answers) {
    EXPECT_NE(answer.doc, roots[1]);
  }
  // The id is burned: removing it again is NOT_FOUND, and nothing
  // changed server-side.
  auto again = client.Ingest(remove);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsNotFound()) << again.status();
  EXPECT_EQ(corpus_->document_count(), 2u);
}

TEST_F(IngestWireTest, MalformedXmlIsNackedWithoutStateChange) {
  StartMutableServer();
  Client client = MakeClient();
  WireIngest bad;
  bad.op = WireIngest::Op::kAdd;
  bad.xml = "<unclosed><and-worse";
  auto nack = client.Ingest(bad);
  ASSERT_FALSE(nack.ok());
  EXPECT_EQ(corpus_->document_count(), 0u);
  EXPECT_EQ(corpus_->epoch(), 0u);

  // The connection survives the nack and the next good ingest lands.
  WireIngest good;
  good.op = WireIngest::Op::kAdd;
  good.xml = MakeDoc(0);
  auto ack = client.Ingest(good);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(ack->epoch, 1u);
}

TEST_F(IngestWireTest, MetricsDumpCarriesIngestCounters) {
  StartMutableServer();
  Client client = MakeClient();
  WireIngest op;
  op.op = WireIngest::Op::kAdd;
  op.xml = MakeDoc(0);
  ASSERT_TRUE(client.Ingest(op).ok());
  auto dump = client.FetchMetrics();
  ASSERT_TRUE(dump.ok()) << dump.status();
  EXPECT_NE(dump->find("ingest_docs_added"), std::string::npos) << *dump;
  EXPECT_NE(dump->find("ingest_epoch"), std::string::npos);
}

TEST_F(IngestWireTest, MetricsDumpCarriesVlogGarbageGauge) {
  // A disk-backed corpus with a tiny inline threshold spills every
  // document payload to the value log; removing a document strands its
  // spilled bytes as garbage, and the published gauge must surface that
  // over the wire so an operator can see compaction debt remotely.
  MutableCorpus::Options options;
  options.data_dir = dir_;
  options.num_shards = 1;
  options.model = TestModel();
  options.store_kind = storage::StoreKind::kDisk;
  options.inline_threshold = 16;
  auto corpus = MutableCorpus::Open(std::move(options));
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  QueryService service(**corpus, ServiceOptions{.num_threads = 1});
  Server server(service, **corpus, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ClientOptions client_options;
  client_options.port = server.port();
  Client client(client_options);

  // A posting list long enough to cross the 16-byte inline threshold
  // and spill; removing its document strands those vlog bytes.
  WireIngest add;
  add.op = WireIngest::Op::kAdd;
  add.xml = "<elem1>";
  for (int i = 0; i < 40; ++i) add.xml += "term1 ";
  add.xml += "</elem1>";
  auto ack = client.Ingest(add);
  ASSERT_TRUE(ack.ok()) << ack.status();
  WireIngest remove;
  remove.op = WireIngest::Op::kRemove;
  remove.doc_root = ack->doc_root;
  ASSERT_TRUE(client.Ingest(remove).ok());

  auto dump = client.FetchMetrics();
  ASSERT_TRUE(dump.ok()) << dump.status();
  const auto pos = dump->find("vlog_garbage_bytes ");
  ASSERT_NE(pos, std::string::npos) << *dump;
  const long long garbage =
      std::strtoll(dump->c_str() + pos + std::strlen("vlog_garbage_bytes "),
                   nullptr, 10);
  EXPECT_GT(garbage, 0) << *dump;
  server.Shutdown(/*drain=*/true);
}

TEST_F(IngestWireTest, ImmutableServerNacksIngest) {
  // A server fronting a plain immutable Database answers kIngest with
  // UNIMPLEMENTED — never a dropped frame or a killed connection.
  auto db = engine::Database::BuildFromXml({MakeDoc(0)}, TestModel());
  ASSERT_TRUE(db.ok());
  QueryService service(*db, ServiceOptions{.num_threads = 1});
  Server server(service, *db, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ClientOptions options;
  options.port = server.port();
  Client client(options);
  WireIngest op;
  op.op = WireIngest::Op::kAdd;
  op.xml = MakeDoc(1);
  auto nack = client.Ingest(op);
  ASSERT_FALSE(nack.ok());
  EXPECT_EQ(nack.status().code(), util::StatusCode::kUnimplemented)
      << nack.status();
  // The same connection still serves queries.
  WireRequest request;
  request.query = kQuery;
  auto response = client.Call(request);
  EXPECT_TRUE(response.ok()) << response.status();
  server.Shutdown(/*drain=*/true);
}

}  // namespace
}  // namespace approxql::net
