#include "gen/query_generator.h"
#include "gen/xml_generator.h"

#include <gtest/gtest.h>

#include <set>

#include "engine/database.h"
#include "xml/xml_dom.h"

namespace approxql::gen {
namespace {

using cost::CostModel;

XmlGenOptions SmallOptions(uint64_t seed = 7) {
  XmlGenOptions options;
  options.seed = seed;
  options.total_elements = 2000;
  options.element_names = 20;
  options.vocabulary = 300;
  options.words_per_element = 4.0;
  options.template_nodes = 40;
  options.elements_per_document = 50;
  return options;
}

TEST(XmlGeneratorTest, HitsElementTarget) {
  XmlGenerator gen(SmallOptions());
  auto tree = gen.GenerateTree(CostModel());
  ASSERT_TRUE(tree.ok());
  size_t struct_nodes = 0;
  for (doc::NodeId id = 1; id < tree->size(); ++id) {
    struct_nodes += tree->node(id).type == NodeType::kStruct ? 1 : 0;
  }
  EXPECT_GE(struct_nodes, 2000u);
  EXPECT_LE(struct_nodes, 2100u);  // one document of overshoot at most
}

TEST(XmlGeneratorTest, WordVolumeNearTarget) {
  XmlGenerator gen(SmallOptions());
  auto tree = gen.GenerateTree(CostModel());
  ASSERT_TRUE(tree.ok());
  size_t struct_nodes = 0;
  size_t text_nodes = 0;
  for (doc::NodeId id = 1; id < tree->size(); ++id) {
    if (tree->node(id).type == NodeType::kStruct) {
      ++struct_nodes;
    } else {
      ++text_nodes;
    }
  }
  double words_per_element =
      static_cast<double>(text_nodes) / static_cast<double>(struct_nodes);
  EXPECT_GT(words_per_element, 1.0);
  EXPECT_LT(words_per_element, 12.0);
}

TEST(XmlGeneratorTest, DeterministicForSeed) {
  XmlGenerator gen1(SmallOptions(5));
  XmlGenerator gen2(SmallOptions(5));
  auto t1 = gen1.GenerateTree(CostModel());
  auto t2 = gen2.GenerateTree(CostModel());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  ASSERT_EQ(t1->size(), t2->size());
  for (doc::NodeId id = 0; id < t1->size(); ++id) {
    ASSERT_EQ(t1->label(id), t2->label(id));
  }
  XmlGenerator gen3(SmallOptions(6));
  auto t3 = gen3.GenerateTree(CostModel());
  ASSERT_TRUE(t3.ok());
  EXPECT_NE(t1->size(), t3->size());
}

TEST(XmlGeneratorTest, TermsAreZipfSkewed) {
  XmlGenerator gen(SmallOptions());
  auto tree = gen.GenerateTree(CostModel());
  ASSERT_TRUE(tree.ok());
  // The most frequent term should dominate any mid-tail term clearly.
  auto count = [&](const std::string& term) {
    doc::LabelId id = tree->labels().Find(term);
    if (id == doc::kInvalidLabel) return size_t{0};
    size_t n = 0;
    for (doc::NodeId node = 1; node < tree->size(); ++node) {
      n += tree->node(node).type == NodeType::kText &&
                   tree->node(node).label == id
               ? 1
               : 0;
    }
    return n;
  };
  EXPECT_GT(count(gen.Term(0)), 4 * count(gen.Term(100)) + 4);
}

TEST(XmlGeneratorTest, SchemaStaysCompact) {
  XmlGenerator gen(SmallOptions());
  auto tree = gen.GenerateTree(CostModel());
  ASSERT_TRUE(tree.ok());
  CostModel model;
  auto schema = schema::Schema::Build(&*tree, model);
  // The schema reflects the template, not the data volume.
  EXPECT_LT(schema.size(), 200u);
}

TEST(XmlGeneratorTest, DocumentXmlParses) {
  XmlGenerator gen(SmallOptions());
  for (int i = 0; i < 3; ++i) {
    std::string xml = gen.GenerateDocumentXml();
    auto doc = xml::ParseXmlDocument(xml);
    ASSERT_TRUE(doc.ok()) << doc.status();
  }
}

struct DbFixture {
  DbFixture() {
    XmlGenerator gen(SmallOptions());
    auto tree = gen.GenerateTree(CostModel());
    APPROXQL_CHECK(tree.ok());
    auto built =
        engine::Database::FromDataTree(std::move(tree).value(), CostModel());
    APPROXQL_CHECK(built.ok());
    db = std::make_unique<engine::Database>(std::move(built).value());
  }
  std::unique_ptr<engine::Database> db;
};

TEST(QueryGeneratorTest, FillsPatternFromIndexes) {
  DbFixture fx;
  QueryGenOptions options;
  options.seed = 3;
  options.renamings_per_label = 5;
  QueryGenerator qgen(*fx.db, options);
  auto generated = qgen.Generate(kPattern2);
  ASSERT_TRUE(generated.ok()) << generated.status();
  // Pattern 2 = name[name[term and (term or term)]].
  auto reparsed = query::Parse(generated->text);
  ASSERT_TRUE(reparsed.ok()) << generated->text;
  EXPECT_EQ(query::SelectorCount(*reparsed->root), 5u);
  EXPECT_EQ(query::OrCount(*reparsed->root), 1u);
  // All labels come from the database (no "name"/"term" placeholders).
  EXPECT_EQ(generated->text.find("name"), std::string::npos);
  EXPECT_EQ(generated->text.find("term["), std::string::npos);
}

TEST(QueryGeneratorTest, CostModelHasRequestedRenamings) {
  DbFixture fx;
  QueryGenOptions options;
  options.seed = 11;
  options.renamings_per_label = 10;
  QueryGenerator qgen(*fx.db, options);
  auto generated = qgen.Generate(kPattern1);
  ASSERT_TRUE(generated.ok());
  // The root selector must have close to 10 renamings (collisions with
  // itself are skipped).
  auto renamings = generated->cost_model.RenamingsOf(
      NodeType::kStruct, generated->query.root->label);
  EXPECT_GE(renamings.size(), 7u);
  EXPECT_LE(renamings.size(), 10u);
  // Delete costs assigned to selectors.
  EXPECT_TRUE(cost::IsFinite(generated->cost_model.DeleteCost(
      NodeType::kStruct, generated->query.root->label)));
}

TEST(QueryGeneratorTest, ZeroRenamings) {
  DbFixture fx;
  QueryGenOptions options;
  options.renamings_per_label = 0;
  options.deletable_fraction = 0.0;
  QueryGenerator qgen(*fx.db, options);
  auto generated = qgen.Generate(kPattern1);
  ASSERT_TRUE(generated.ok());
  auto renamings = generated->cost_model.RenamingsOf(
      NodeType::kStruct, generated->query.root->label);
  EXPECT_TRUE(renamings.empty());
}

TEST(QueryGeneratorTest, GeneratedQueriesExecute) {
  DbFixture fx;
  QueryGenOptions options;
  options.seed = 23;
  options.renamings_per_label = 5;
  QueryGenerator qgen(*fx.db, options);
  for (std::string_view pattern : {kPattern1, kPattern2, kPattern3}) {
    for (int i = 0; i < 3; ++i) {
      auto generated = qgen.Generate(pattern);
      ASSERT_TRUE(generated.ok());
      engine::ExecOptions direct;
      direct.strategy = engine::Strategy::kDirect;
      direct.n = 10;
      direct.cost_model = &generated->cost_model;
      auto a = fx.db->Execute(generated->query, direct);
      ASSERT_TRUE(a.ok()) << generated->text;
      engine::ExecOptions schema = direct;
      schema.strategy = engine::Strategy::kSchema;
      engine::SchemaEvalStats stats;
      schema.schema_stats_out = &stats;
      auto b = fx.db->Execute(generated->query, schema);
      ASSERT_TRUE(b.ok()) << generated->text;
      if (stats.k_capped) {
        // The k cap may shorten the list, never corrupt its prefix.
        ASSERT_LE(b->size(), a->size()) << generated->text;
      } else {
        ASSERT_EQ(a->size(), b->size()) << generated->text;
      }
      for (size_t j = 0; j < b->size(); ++j) {
        EXPECT_EQ((*a)[j].cost, (*b)[j].cost) << generated->text;
      }
    }
  }
}

TEST(QueryGeneratorTest, DifferentSeedsDifferentQueries) {
  DbFixture fx;
  std::set<std::string> texts;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    QueryGenOptions options;
    options.seed = seed;
    QueryGenerator qgen(*fx.db, options);
    auto generated = qgen.Generate(kPattern1);
    ASSERT_TRUE(generated.ok());
    texts.insert(generated->text);
  }
  EXPECT_GE(texts.size(), 4u);
}

}  // namespace
}  // namespace approxql::gen
