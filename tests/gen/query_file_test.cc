#include "gen/query_file.h"

#include <gtest/gtest.h>

#include "engine/database.h"
#include "gen/xml_generator.h"

namespace approxql::gen {
namespace {

GeneratedQuery MakeGenerated() {
  XmlGenOptions options;
  options.seed = 3;
  options.total_elements = 500;
  options.element_names = 10;
  options.vocabulary = 100;
  XmlGenerator generator(options);
  auto tree = generator.GenerateTree(cost::CostModel());
  APPROXQL_CHECK(tree.ok());
  auto db = engine::Database::FromDataTree(std::move(tree).value(),
                                           cost::CostModel());
  APPROXQL_CHECK(db.ok());
  QueryGenOptions q_options;
  q_options.seed = 17;
  q_options.renamings_per_label = 4;
  QueryGenerator qgen(*db, q_options);
  auto generated = qgen.Generate(kPattern2);
  APPROXQL_CHECK(generated.ok());
  return std::move(generated).value();
}

TEST(QueryFileTest, RoundTrip) {
  GeneratedQuery original = MakeGenerated();
  std::string file = WriteQueryFile(original);
  auto parsed = ParseQueryFile(file);
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << file;
  EXPECT_EQ(parsed->text, original.text);
  EXPECT_TRUE(query::AstEquals(*parsed->query.root, *original.query.root));
  EXPECT_EQ(parsed->cost_model.ToConfigString(),
            original.cost_model.ToConfigString());
}

TEST(QueryFileTest, HandwrittenFile) {
  auto parsed = ParseQueryFile(
      "# a comment first\n"
      "\n"
      "query cd[title[\"piano\" and \"concerto\"]]\n"
      "default-insert 1\n"
      "delete text piano 8\n"
      "rename struct cd mc 4\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->text, R"(cd[title["piano" and "concerto"]])");
  EXPECT_EQ(parsed->cost_model.DeleteCost(NodeType::kText, "piano"), 8);
  EXPECT_EQ(parsed->cost_model.RenameCost(NodeType::kStruct, "cd", "mc"), 4);
}

TEST(QueryFileTest, Errors) {
  EXPECT_FALSE(ParseQueryFile("").ok());
  EXPECT_FALSE(ParseQueryFile("delete text piano 8\n").ok());
  EXPECT_FALSE(ParseQueryFile("query \n").ok());
  EXPECT_FALSE(ParseQueryFile("query cd[oops\n").ok());
  EXPECT_FALSE(
      ParseQueryFile("query cd\nnot-a-directive struct x 1\n").ok());
}

TEST(QueryFileTest, QueryOnlyFileHasDefaultCosts) {
  auto parsed = ParseQueryFile("query cd[title[\"x\"]]");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->cost_model.default_insert_cost(), 1);
  EXPECT_FALSE(
      cost::IsFinite(parsed->cost_model.DeleteCost(NodeType::kText, "x")));
}

}  // namespace
}  // namespace approxql::gen
