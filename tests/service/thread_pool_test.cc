// Work-stealing scheduler contract: nested (worker-origin) submissions
// land on the submitting worker's own deque uncapped, owners drain
// their deque LIFO, idle workers steal FIFO from the front, and
// Shutdown's drain/abandon modes cover the deques as well as the
// global queue. parallel_test.cc covers ParallelFor semantics on top.
#include "service/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "service/parallel.h"
#include "util/mutex.h"

namespace approxql::service {
namespace {

TEST(ThreadPoolStealTest, BlockedOwnersBacklogIsStolen) {
  // One worker parks with a full deque; the others must drain it by
  // stealing — every nested task executes even though its owner never
  // pops again.
  ThreadPool pool({.num_threads = 4, .queue_capacity = 8});
  constexpr size_t kNested = 64;
  CountDownLatch done(kNested);
  std::atomic<size_t> ran{0};
  CountDownLatch submitted(1);
  ASSERT_TRUE(pool.TrySubmit([&] {
    for (size_t i = 0; i < kNested; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&] {
        ran.fetch_add(1);
        done.CountDown();
      }));
    }
    submitted.CountDown();
    done.Wait();  // the owner blocks; thieves must finish its deque
  }));
  done.Wait();
  submitted.Wait();
  EXPECT_EQ(ran.load(), kNested);
  // The owner was parked in done.Wait() the whole time, so every one of
  // its nested tasks was taken by another worker.
  EXPECT_GE(pool.steals(), kNested);
}

TEST(ThreadPoolStealTest, WorkerSubmissionBypassesQueueCapacity) {
  // Nested submissions subdivide already-admitted work: they must not
  // bounce off the injection queue's capacity.
  ThreadPool pool({.num_threads = 1, .queue_capacity = 1});
  constexpr size_t kNested = 32;
  CountDownLatch done(kNested);
  std::atomic<size_t> ran{0};
  ASSERT_TRUE(pool.TrySubmit([&] {
    for (size_t i = 0; i < kNested; ++i) {
      EXPECT_TRUE(pool.TrySubmit([&] {
        ran.fetch_add(1);
        done.CountDown();
      }));
    }
  }));
  done.Wait();
  EXPECT_EQ(ran.load(), kNested);
}

TEST(ThreadPoolStealTest, ExternalSubmissionStillBounded) {
  ThreadPool pool({.num_threads = 1, .queue_capacity = 2});
  CountDownLatch release(1);
  CountDownLatch running(1);
  ASSERT_TRUE(pool.TrySubmit([&] {
    running.CountDown();
    release.Wait();
  }));
  running.Wait();  // the only worker is now pinned
  EXPECT_TRUE(pool.TrySubmit([] {}));
  EXPECT_TRUE(pool.TrySubmit([] {}));
  EXPECT_EQ(pool.QueueDepth(), 2u);
  EXPECT_FALSE(pool.TrySubmit([] {}));  // injection queue full
  release.CountDown();
}

TEST(ThreadPoolStealTest, OwnerDrainsItsDequeLifo) {
  // With a single worker there is nobody to steal: the owner pops its
  // own deque newest-first (cache-warm subdivision order).
  ThreadPool pool({.num_threads = 1, .queue_capacity = 8});
  std::vector<int> order;
  CountDownLatch done(3);
  ASSERT_TRUE(pool.TrySubmit([&] {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&order, &done, i] {
        order.push_back(i);  // single worker: no concurrent access
        done.CountDown();
      }));
    }
  }));
  done.Wait();
  EXPECT_EQ(order, (std::vector<int>{2, 1, 0}));
  EXPECT_EQ(pool.steals(), 0u);
}

TEST(ThreadPoolStealTest, ThievesTakeOldestFirst) {
  // A blocked owner's deque is stolen from the opposite end: FIFO, so
  // the earliest-forked work starts first.
  ThreadPool pool({.num_threads = 2, .queue_capacity = 8});
  std::vector<int> order;
  util::Mutex order_mu;
  CountDownLatch done(3);
  ASSERT_TRUE(pool.TrySubmit([&] {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(pool.TrySubmit([&, i] {
        {
          util::MutexLock lock(&order_mu);
          order.push_back(i);
        }
        done.CountDown();
      }));
    }
    done.Wait();  // owner parks; the other worker steals all three
  }));
  done.Wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(pool.steals(), 3u);
}

TEST(ThreadPoolStealTest, ShutdownAbandonDropsDequeBacklog) {
  // kAbandon must clear worker deques, not just the global queue; the
  // abandoned tasks are destroyed without running.
  auto pool = std::make_unique<ThreadPool>(
      ThreadPool::Options{.num_threads = 2, .queue_capacity = 8});
  std::atomic<size_t> ran{0};
  std::atomic<size_t> destroyed{0};
  CountDownLatch release(1);
  CountDownLatch pinned(2);
  // Pin both workers so nothing drains the deque backlog early; the
  // first pinned task forks the backlog before parking.
  struct CountsDestruction {
    std::atomic<size_t>* counter;
    ~CountsDestruction() { counter->fetch_add(1); }
  };
  ASSERT_TRUE(pool->TrySubmit([&] {
    for (int i = 0; i < 4; ++i) {
      auto token = std::make_shared<CountsDestruction>(&destroyed);
      ASSERT_TRUE(pool->TrySubmit([&ran, token] { ran.fetch_add(1); }));
    }
    pinned.CountDown();
    release.Wait();
  }));
  ASSERT_TRUE(pool->TrySubmit([&] {
    pinned.CountDown();
    release.Wait();
  }));
  pinned.Wait();
  EXPECT_EQ(pool->QueueDepth(), 4u);  // the forked backlog, all on deques
  std::thread shutdown([&] { pool->Shutdown(DrainMode::kAbandon); });
  // Shutdown closes admission and sweeps the queues, then joins; the
  // pinned workers only return once released.
  release.CountDown();
  shutdown.join();
  EXPECT_EQ(ran.load(), 0u);
  EXPECT_EQ(destroyed.load(), 4u);  // destroyed unrun, obligations intact
}

TEST(ThreadPoolStealTest, ConcurrentNestedParallelForStress) {
  // Many admitted tasks each subdivide on the same pool: exercises
  // own-deque pushes, steals, and the park/wake protocol under load
  // (the interesting run is under TSan).
  ThreadPool pool({.num_threads = 4, .queue_capacity = 64});
  constexpr size_t kOuter = 16;
  constexpr size_t kInner = 50;
  std::atomic<size_t> total{0};
  CountDownLatch done(kOuter);
  for (size_t t = 0; t < kOuter; ++t) {
    ASSERT_TRUE(pool.TrySubmit([&] {
      ParallelForResult result =
          ParallelFor(&pool, kInner, [&](size_t) { total.fetch_add(1); });
      EXPECT_EQ(result.executed, kInner);
      done.CountDown();
    }));
  }
  done.Wait();
  EXPECT_EQ(total.load(), kOuter * kInner);
}

}  // namespace
}  // namespace approxql::service
