// Bit-identical results: the parallel evaluation path (disjunct fan-out
// + concurrent fetch + k-way merge) must return exactly the answers the
// serial path returns, in the same order, for both strategies, at every
// parallelism level. Queries come from the paper's benchmark patterns
// plus an or-heavy pattern whose separated representation has eight
// disjuncts.
//
// The comparison holds whenever no deadline fires and the schema
// evaluator does not hit its max_k cap; runs where either side reports
// k_capped are skipped (a capped search may legitimately return fewer
// answers than an uncapped one).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "service/query_service.h"

namespace approxql {
namespace {

using engine::Database;
using engine::Strategy;
using service::QueryRequest;
using service::QueryResponse;
using service::QueryService;
using service::ServiceOptions;

constexpr size_t kResultBound = 10;

Database MakeSyntheticDb() {
  gen::XmlGenOptions options;
  options.seed = 20020314;
  options.total_elements = 4000;
  options.vocabulary = 800;
  gen::XmlGenerator generator(options);
  cost::CostModel model;
  auto tree = generator.GenerateTree(model);
  APPROXQL_CHECK(tree.ok()) << tree.status();
  auto db = Database::FromDataTree(std::move(tree).value(), model);
  APPROXQL_CHECK(db.ok()) << db.status();
  return std::move(db).value();
}

// Eight disjuncts: three independent binary "or"s.
constexpr std::string_view kOrHeavyPattern =
    "name[(name[term] or term) and (term or term) and (name[term] or term)]";

std::vector<gen::GeneratedQuery> MakeQueries(const Database& db) {
  gen::QueryGenOptions options;
  options.seed = 99;
  options.renamings_per_label = 3;
  gen::QueryGenerator generator(db, options);
  std::vector<gen::GeneratedQuery> queries;
  constexpr std::string_view kPatterns[] = {gen::kPattern1, gen::kPattern2,
                                            gen::kPattern3, kOrHeavyPattern};
  for (size_t i = 0; i < 16; ++i) {
    auto generated = generator.Generate(kPatterns[i % 4]);
    APPROXQL_CHECK(generated.ok()) << generated.status();
    queries.push_back(std::move(generated).value());
  }
  return queries;
}

std::string Canonical(const QueryResponse& response) {
  if (!response.status.ok()) return "error: " + response.status.ToString();
  std::string out;
  for (const auto& answer : response.answers) {
    out += std::to_string(answer.root) + ":" + std::to_string(answer.cost) +
           ";";
  }
  return out;
}

class ParallelEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(MakeSyntheticDb());
    queries_ = new std::vector<gen::GeneratedQuery>(MakeQueries(*db_));
  }
  static void TearDownTestSuite() {
    delete queries_;
    queries_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
  static std::vector<gen::GeneratedQuery>* queries_;
};

Database* ParallelEquivalenceTest::db_ = nullptr;
std::vector<gen::GeneratedQuery>* ParallelEquivalenceTest::queries_ = nullptr;

void CheckStrategy(const Database& db,
                   const std::vector<gen::GeneratedQuery>& queries,
                   Strategy strategy) {
  // The test corpus is tiny; zero the granularity thresholds so the
  // adaptive scheduler still exercises maximal fan-out here.
  QueryService service(db, ServiceOptions{.num_threads = 4,
                                          .queue_capacity = 64,
                                          .cache_capacity = 0,
                                          .parallel_min_work = 0,
                                          .parallel_fetch_batch = 0,
                                          .parallel_min_skeletons = 0});
  for (const gen::GeneratedQuery& generated : queries) {
    QueryRequest request;
    request.query_text = generated.text;
    request.exec.strategy = strategy;
    request.exec.n = kResultBound;
    request.exec.cost_model = &generated.cost_model;
    request.bypass_cache = true;

    engine::SchemaEvalStats serial_stats;
    request.exec.schema_stats_out = &serial_stats;
    request.parallelism = 1;
    QueryResponse serial = service.ExecuteNow(request);
    ASSERT_TRUE(serial.status.ok())
        << generated.text << ": " << serial.status;
    EXPECT_FALSE(serial.parallel);
    const std::string expected = Canonical(serial);

    // The serial service path must itself match the raw engine.
    auto baseline = db.Execute(generated.text, request.exec);
    ASSERT_TRUE(baseline.ok()) << baseline.status();
    std::string engine_canonical;
    for (const auto& answer : *baseline) {
      engine_canonical += std::to_string(answer.root) + ":" +
                          std::to_string(answer.cost) + ";";
    }
    EXPECT_EQ(expected, engine_canonical) << generated.text;

    for (size_t parallelism : {size_t{2}, size_t{4}, size_t{8}}) {
      engine::SchemaEvalStats parallel_stats;
      request.exec.schema_stats_out = &parallel_stats;
      request.parallelism = parallelism;
      QueryResponse parallel = service.ExecuteNow(request);
      ASSERT_TRUE(parallel.status.ok())
          << generated.text << " @" << parallelism << ": " << parallel.status;
      // Bit-identity is guaranteed only when the incremental evaluator
      // did not hit its max_k cap: per-disjunct searches cap later than
      // the whole-query search, so a capped run may (legitimately)
      // return *more* answers than its counterpart.
      if (serial_stats.k_capped || parallel_stats.k_capped) continue;
      EXPECT_EQ(Canonical(parallel), expected)
          << generated.text << " @" << parallelism;
    }
  }
}

TEST_F(ParallelEquivalenceTest, DirectStrategyBitIdentical) {
  CheckStrategy(*db_, *queries_, Strategy::kDirect);
}

TEST_F(ParallelEquivalenceTest, SchemaStrategyBitIdentical) {
  CheckStrategy(*db_, *queries_, Strategy::kSchema);
}

TEST_F(ParallelEquivalenceTest, ParallelFlagSetOnFanOut) {
  QueryService service(*db_, ServiceOptions{.num_threads = 4,
                                            .queue_capacity = 64,
                                            .cache_capacity = 0,
                                            .parallelism = 4,
                                            .parallel_min_work = 0,
                                            .parallel_fetch_batch = 0,
                                            .parallel_min_skeletons = 0});
  // The or-heavy pattern always decomposes into multiple disjuncts.
  const gen::GeneratedQuery& generated = (*queries_)[3];
  QueryRequest request;
  request.query_text = generated.text;
  request.exec.strategy = Strategy::kDirect;
  request.exec.n = kResultBound;
  request.exec.cost_model = &generated.cost_model;
  request.bypass_cache = true;
  QueryResponse response = service.ExecuteNow(request);
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_TRUE(response.parallel);
  EXPECT_GT(service.GetSnapshot().parallel_tasks, 0u);
}

TEST_F(ParallelEquivalenceTest, SubmittedParallelRequestsAgreeWithSerial) {
  // The same property through the admission queue: concurrent parallel
  // requests on a shared pool (workers forking into their own pool).
  QueryService service(*db_, ServiceOptions{.num_threads = 4,
                                            .queue_capacity = 64,
                                            .cache_capacity = 0,
                                            .parallelism = 4,
                                            .parallel_min_work = 0,
                                            .parallel_fetch_batch = 0,
                                            .parallel_min_skeletons = 0});
  const size_t count = queries_->size();
  std::vector<std::string> expected(count);
  std::vector<engine::SchemaEvalStats> serial_stats(count);
  std::vector<engine::SchemaEvalStats> parallel_stats(count);
  std::vector<std::future<QueryResponse>> futures;
  for (size_t i = 0; i < count; ++i) {
    const gen::GeneratedQuery& generated = (*queries_)[i];
    QueryRequest request;
    request.query_text = generated.text;
    request.exec.strategy = Strategy::kSchema;
    request.exec.n = kResultBound;
    request.exec.cost_model = &generated.cost_model;
    request.bypass_cache = true;
    request.exec.schema_stats_out = &serial_stats[i];
    request.parallelism = 1;
    expected[i] = Canonical(service.ExecuteNow(request));
    request.exec.schema_stats_out = &parallel_stats[i];
    request.parallelism = 4;
    futures.push_back(service.Submit(std::move(request)));
  }
  for (size_t i = 0; i < futures.size(); ++i) {
    QueryResponse response = futures[i].get();
    ASSERT_TRUE(response.status.ok())
        << (*queries_)[i].text << ": " << response.status;
    if (serial_stats[i].k_capped || parallel_stats[i].k_capped) continue;
    EXPECT_EQ(Canonical(response), expected[i]) << (*queries_)[i].text;
  }
}

}  // namespace
}  // namespace approxql
