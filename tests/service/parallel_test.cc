#include "service/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "service/thread_pool.h"

namespace approxql::service {
namespace {

// --- CountDownLatch --------------------------------------------------------

TEST(CountDownLatchTest, WaitReturnsOnceCountReachesZero) {
  CountDownLatch latch(3);
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    latch.Wait();
    released.store(true);
  });
  latch.CountDown();
  EXPECT_FALSE(released.load());
  latch.CountDown(2);
  waiter.join();
  EXPECT_TRUE(released.load());
}

TEST(CountDownLatchTest, ZeroCountNeverBlocks) {
  CountDownLatch latch(0);
  latch.Wait();  // must return immediately
}

TEST(CountDownLatchTest, OvercountingSaturatesAtZero) {
  CountDownLatch latch(1);
  latch.CountDown(5);
  latch.Wait();
}

// --- ParallelFor -----------------------------------------------------------

TEST(ParallelForTest, RunsEveryIterationExactlyOnce) {
  ThreadPool pool({.num_threads = 4, .queue_capacity = 64});
  constexpr size_t kCount = 100;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelForResult result =
      ParallelFor(&pool, kCount, [&](size_t i) { hits[i].fetch_add(1); });
  EXPECT_EQ(result.executed, kCount);
  EXPECT_EQ(result.skipped, 0u);
  EXPECT_FALSE(result.cancelled);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "iteration " << i;
  }
}

TEST(ParallelForTest, HandlesEmptyAndSingleIteration) {
  ThreadPool pool({.num_threads = 2, .queue_capacity = 8});
  EXPECT_EQ(ParallelFor(&pool, 0, [](size_t) { FAIL(); }).executed, 0u);
  std::atomic<int> ran{0};
  EXPECT_EQ(ParallelFor(&pool, 1, [&](size_t) { ran++; }).executed, 1u);
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::atomic<size_t> sum{0};
  ParallelForResult result =
      ParallelFor(nullptr, 10, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(result.executed, 10u);
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ParallelForTest, CompletesWhenEveryHelperIsRejected) {
  // Queue capacity 0: every TrySubmit fails, so the caller must finish
  // the whole loop alone — the deadlock-freedom guarantee.
  ThreadPool pool({.num_threads = 1, .queue_capacity = 0});
  std::atomic<size_t> sum{0};
  ParallelForResult result =
      ParallelFor(&pool, 10, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(result.executed, 10u);
  EXPECT_EQ(sum.load(), 45u);
}

TEST(ParallelForTest, CompletesWhileWorkersAreAllBusy) {
  // Occupy every worker, then fork: helpers sit in the queue unserved
  // until the blockers finish, but the caller claims iterations itself,
  // so the fork-join completes even if no helper ever runs.
  ThreadPool pool({.num_threads = 2, .queue_capacity = 64});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.TrySubmit([gate] { gate.wait(); }));
  }
  std::atomic<size_t> sum{0};
  ParallelForResult result =
      ParallelFor(&pool, 20, [&](size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(result.executed, 20u);
  EXPECT_EQ(sum.load(), 190u);
  release.set_value();
}

TEST(ParallelForTest, NestedForksOnTheSamePoolDoNotDeadlock) {
  // Workers running ParallelFor callers fork sub-loops into the pool
  // they occupy; each caller can always finish its own iterations.
  ThreadPool pool({.num_threads = 2, .queue_capacity = 64});
  std::atomic<size_t> total{0};
  ParallelForResult outer = ParallelFor(&pool, 4, [&](size_t) {
    ParallelFor(&pool, 8, [&](size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(outer.executed, 4u);
  EXPECT_EQ(total.load(), 32u);
}

TEST(ParallelForTest, FirstExceptionPropagatesToCaller) {
  ThreadPool pool({.num_threads = 2, .queue_capacity = 64});
  EXPECT_THROW(ParallelFor(&pool, 16,
                           [](size_t i) {
                             if (i % 2 == 1) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
}

TEST(ParallelForTest, CancellationSkipsUnclaimedIterations) {
  // parallelism 1 = the caller alone, in index order: deterministic.
  std::atomic<bool> fire{false};
  std::atomic<size_t> bodies{0};
  ParallelForOptions options;
  options.parallelism = 1;
  options.cancelled = [&] { return fire.load(); };
  ParallelForResult result = ParallelFor(
      nullptr, 10,
      [&](size_t i) {
        bodies.fetch_add(1);
        if (i == 2) fire.store(true);
      },
      options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.executed, 3u);
  EXPECT_EQ(result.skipped, 7u);
  EXPECT_EQ(result.executed + result.skipped, 10u);
  EXPECT_EQ(bodies.load(), 3u);
}

TEST(ParallelForTest, EveryIterationAccountedForUnderConcurrentCancel) {
  ThreadPool pool({.num_threads = 4, .queue_capacity = 64});
  std::atomic<bool> fire{false};
  ParallelForOptions options;
  options.cancelled = [&] { return fire.load(); };
  ParallelForResult result = ParallelFor(
      &pool, 200,
      [&](size_t i) {
        if (i == 50) fire.store(true);
      },
      options);
  EXPECT_EQ(result.executed + result.skipped, 200u);
  EXPECT_TRUE(result.cancelled);
}

// --- ThreadPool::Shutdown(DrainMode) ---------------------------------------

TEST(DrainModeTest, DrainRunsEveryQueuedTask) {
  ThreadPool pool({.num_threads = 1, .queue_capacity = 8});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> started;
  ASSERT_TRUE(pool.TrySubmit([&started, gate] {
    started.set_value();
    gate.wait();
  }));
  started.get_future().wait();
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  release.set_value();
  pool.Shutdown(DrainMode::kDrain);
  EXPECT_EQ(ran.load(), 2);
}

TEST(DrainModeTest, AbandonDestroysQueuedTasksWithoutRunning) {
  ThreadPool pool({.num_threads = 1, .queue_capacity = 8});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> started;
  ASSERT_TRUE(pool.TrySubmit([&started, gate] {
    started.set_value();
    gate.wait();
  }));
  started.get_future().wait();
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  ASSERT_TRUE(pool.TrySubmit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(pool.QueueDepth(), 2u);
  // Release the blocker only after Shutdown has swapped the queue out
  // (observable as QueueDepth() == 0), so neither queued task can be
  // picked up before abandonment — the sequencing is deterministic.
  std::thread releaser([&] {
    while (pool.QueueDepth() != 0) std::this_thread::yield();
    release.set_value();
  });
  pool.Shutdown(DrainMode::kAbandon);
  releaser.join();
  EXPECT_EQ(ran.load(), 0);
}

TEST(DrainModeTest, AbandonedTaskDestructorsRun) {
  // The promise-guard pattern in the query service relies on destroyed-
  // not-run tasks still discharging obligations from their destructors.
  struct Marker {
    explicit Marker(std::atomic<int>* count) : count_(count) {}
    ~Marker() {
      if (count_ != nullptr) count_->fetch_add(1);
    }
    Marker(Marker&& other) noexcept : count_(other.count_) {
      other.count_ = nullptr;
    }
    Marker(const Marker&) = delete;
    std::atomic<int>* count_;
  };
  std::atomic<int> destroyed{0};
  {
    ThreadPool pool({.num_threads = 1, .queue_capacity = 8});
    std::promise<void> release;
    std::shared_future<void> gate(release.get_future());
    std::promise<void> started;
    ASSERT_TRUE(pool.TrySubmit([&started, gate] {
      started.set_value();
      gate.wait();
    }));
    started.get_future().wait();
    auto marker = std::make_shared<Marker>(&destroyed);
    ASSERT_TRUE(pool.TrySubmit([marker] {}));
    marker.reset();
    EXPECT_EQ(destroyed.load(), 0);
    std::thread releaser([&] {
      while (pool.QueueDepth() != 0) std::this_thread::yield();
      release.set_value();
    });
    pool.Shutdown(DrainMode::kAbandon);
    releaser.join();
  }
  EXPECT_EQ(destroyed.load(), 1);
}

}  // namespace
}  // namespace approxql::service
