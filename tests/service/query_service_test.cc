#include "service/query_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/thread_pool.h"

namespace approxql::service {
namespace {

using engine::Database;
using engine::ExecOptions;
using engine::QueryAnswer;
using engine::Strategy;

// --- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool({.num_threads = 4, .queue_capacity = 1024});
  std::atomic<int> sum{0};
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(pool.TrySubmit(
        [&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); }));
  }
  pool.Shutdown();
  EXPECT_EQ(sum.load(), 5050);
}

TEST(ThreadPoolTest, RejectsWhenQueueFull) {
  ThreadPool pool({.num_threads = 1, .queue_capacity = 2});
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::promise<void> started;
  // Occupy the only worker, then fill the queue.
  ASSERT_TRUE(pool.TrySubmit([&started, gate] {
    started.set_value();
    gate.wait();
  }));
  started.get_future().wait();
  ASSERT_TRUE(pool.TrySubmit([gate] { gate.wait(); }));
  ASSERT_TRUE(pool.TrySubmit([gate] { gate.wait(); }));
  EXPECT_EQ(pool.QueueDepth(), 2u);
  EXPECT_FALSE(pool.TrySubmit([] {}));  // bounded: reject, don't buffer
  release.set_value();
  pool.Shutdown();  // drains the two queued tasks
  EXPECT_EQ(pool.QueueDepth(), 0u);
}

TEST(ThreadPoolTest, ShutdownStopsAdmission) {
  ThreadPool pool({.num_threads = 1, .queue_capacity = 8});
  pool.Shutdown();
  EXPECT_FALSE(pool.TrySubmit([] {}));
}

// --- QueryService ----------------------------------------------------------

std::vector<std::string> CatalogDocs() {
  return {
      "<catalog><cd><title>piano concerto</title>"
      "<composer>rachmaninov</composer></cd></catalog>",
      "<catalog><cd><title>goldberg variations</title>"
      "<composer>bach</composer></cd></catalog>",
  };
}

Database MakeDb() {
  cost::CostModel model;
  model.SetRenameCost(NodeType::kText, "concerto", "variations", 3);
  model.SetDeleteCost(NodeType::kText, "piano", 5);
  auto db = Database::BuildFromXml(CatalogDocs(), std::move(model));
  APPROXQL_CHECK(db.ok()) << db.status();
  return std::move(db).value();
}

constexpr char kQuery[] = R"(cd[title["piano" and "concerto"]])";

TEST(QueryServiceTest, SubmitMatchesDirectDatabaseExecution) {
  Database db = MakeDb();
  QueryService service(db, ServiceOptions{.num_threads = 2});
  QueryRequest request;
  request.query_text = kQuery;
  request.exec.n = SIZE_MAX;
  QueryResponse response = service.Submit(request).get();
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_FALSE(response.truncated);
  EXPECT_FALSE(response.cache_hit);

  ExecOptions exec;
  exec.n = SIZE_MAX;
  auto expected = db.Execute(kQuery, exec);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(response.answers.size(), expected->size());
  for (size_t i = 0; i < expected->size(); ++i) {
    EXPECT_EQ(response.answers[i].root, (*expected)[i].root);
    EXPECT_EQ(response.answers[i].cost, (*expected)[i].cost);
  }
}

TEST(QueryServiceTest, SecondIdenticalRequestHitsCache) {
  Database db = MakeDb();
  QueryService service(db, ServiceOptions{.num_threads = 2});
  QueryRequest request;
  request.query_text = kQuery;
  QueryResponse first = service.Submit(request).get();
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  // Normalization: extra whitespace must map onto the same cache entry.
  QueryRequest spaced;
  spaced.query_text = R"(cd[ title [ "piano"   and "concerto" ] ])";
  QueryResponse second = service.Submit(spaced).get();
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cache_hit);
  ASSERT_EQ(second.answers.size(), first.answers.size());
  for (size_t i = 0; i < first.answers.size(); ++i) {
    EXPECT_EQ(second.answers[i].root, first.answers[i].root);
    EXPECT_EQ(second.answers[i].cost, first.answers[i].cost);
  }
  QueryService::Snapshot snapshot = service.GetSnapshot();
  EXPECT_EQ(snapshot.cache.hits, 1u);
  EXPECT_EQ(snapshot.cache.misses, 1u);
}

TEST(QueryServiceTest, BypassCacheSkipsLookupAndInsert) {
  Database db = MakeDb();
  QueryService service(db, ServiceOptions{.num_threads = 1});
  QueryRequest request;
  request.query_text = kQuery;
  request.bypass_cache = true;
  EXPECT_FALSE(service.ExecuteNow(request).cache_hit);
  EXPECT_FALSE(service.ExecuteNow(request).cache_hit);
  EXPECT_EQ(service.GetSnapshot().cache.size, 0u);
}

TEST(QueryServiceTest, QueueFullRejectsWithResourceExhausted) {
  Database db = MakeDb();
  // Zero queue capacity: every Submit is rejected up front, which makes
  // the overload path deterministic.
  QueryService service(
      db, ServiceOptions{.num_threads = 1, .queue_capacity = 0});
  QueryRequest request;
  request.query_text = kQuery;
  QueryResponse response = service.Submit(request).get();
  EXPECT_TRUE(response.status.IsResourceExhausted()) << response.status;
  EXPECT_TRUE(response.answers.empty());
  QueryService::Snapshot snapshot = service.GetSnapshot();
  EXPECT_EQ(snapshot.rejected, 1u);
  EXPECT_EQ(snapshot.submitted, 1u);
  // ExecuteNow bypasses admission and still works under a full queue.
  EXPECT_TRUE(service.ExecuteNow(request).status.ok());
}

TEST(QueryServiceTest, ExpiredDeadlineFailsBeforeExecution) {
  Database db = MakeDb();
  QueryService service(db, ServiceOptions{.num_threads = 1});
  QueryRequest request;
  request.query_text = kQuery;
  request.deadline = std::chrono::milliseconds(-1);  // already expired
  QueryResponse response = service.Submit(request).get();
  EXPECT_TRUE(response.status.IsDeadlineExceeded()) << response.status;
  EXPECT_EQ(service.GetSnapshot().deadline_exceeded, 1u);
}

TEST(QueryServiceTest, CancelledSchemaRunReturnsTruncated) {
  Database db = MakeDb();
  QueryService service(db, ServiceOptions{.num_threads = 1});
  QueryRequest request;
  request.query_text = kQuery;
  // A user-supplied cancellation hook (no deadline) fires immediately:
  // the run completes OK but flags truncation, and the partial answer
  // must not be cached.
  request.exec.schema.cancelled = [] { return true; };
  QueryResponse response = service.ExecuteNow(request);
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_TRUE(response.truncated);
  EXPECT_EQ(service.GetSnapshot().truncated, 1u);
  EXPECT_EQ(service.GetSnapshot().cache.size, 0u);

  QueryRequest clean;
  clean.query_text = kQuery;
  QueryResponse full = service.ExecuteNow(clean);
  ASSERT_TRUE(full.status.ok());
  EXPECT_FALSE(full.cache_hit);  // truncated run must not have populated
  EXPECT_FALSE(full.truncated);
  EXPECT_FALSE(full.answers.empty());
}

TEST(QueryServiceTest, PerQueryCostModelsGetDistinctCacheEntries) {
  Database db = MakeDb();
  QueryService service(db, ServiceOptions{.num_threads = 1});
  cost::CostModel expensive;
  expensive.SetRenameCost(NodeType::kText, "concerto", "variations", 3);
  expensive.SetDeleteCost(NodeType::kText, "piano", 50);  // build-time: 5

  QueryRequest base;
  base.query_text = kQuery;
  base.exec.n = SIZE_MAX;
  QueryRequest tweaked = base;
  tweaked.exec.cost_model = &expensive;

  QueryResponse base_response = service.ExecuteNow(base);
  QueryResponse tweaked_response = service.ExecuteNow(tweaked);
  ASSERT_TRUE(base_response.status.ok());
  ASSERT_TRUE(tweaked_response.status.ok());
  EXPECT_FALSE(tweaked_response.cache_hit);  // different fingerprint
  ASSERT_EQ(base_response.answers.size(), 2u);
  ASSERT_EQ(tweaked_response.answers.size(), 2u);
  EXPECT_NE(base_response.answers[1].cost, tweaked_response.answers[1].cost);
  // Each model now hits its own entry.
  EXPECT_TRUE(service.ExecuteNow(base).cache_hit);
  EXPECT_TRUE(service.ExecuteNow(tweaked).cache_hit);
}

TEST(QueryServiceTest, InvalidateCacheForcesReexecution) {
  Database db = MakeDb();
  QueryService service(db, ServiceOptions{.num_threads = 1});
  QueryRequest request;
  request.query_text = kQuery;
  service.ExecuteNow(request);
  ASSERT_TRUE(service.ExecuteNow(request).cache_hit);
  service.InvalidateCache();
  EXPECT_FALSE(service.ExecuteNow(request).cache_hit);
}

TEST(QueryServiceTest, ParseErrorCountsAsFailed) {
  Database db = MakeDb();
  QueryService service(db, ServiceOptions{.num_threads = 1});
  QueryRequest request;
  request.query_text = "cd[oops";
  QueryResponse response = service.Submit(request).get();
  EXPECT_TRUE(response.status.IsParseError());
  EXPECT_EQ(service.GetSnapshot().failed, 1u);
}

TEST(QueryServiceTest, ParallelRequestMatchesSerialAndSetsFlag) {
  Database db = MakeDb();
  // Tiny corpus: zero the granularity floor so fan-out still triggers.
  QueryService service(
      db, ServiceOptions{.num_threads = 2, .parallel_min_work = 0});
  // Two disjuncts under the schema strategy; parallel and serial must
  // rank identically.
  QueryRequest request;
  request.query_text = R"(cd[title["piano" or "goldberg"]])";
  request.exec.n = SIZE_MAX;
  request.bypass_cache = true;
  request.parallelism = 1;
  QueryResponse serial = service.ExecuteNow(request);
  ASSERT_TRUE(serial.status.ok()) << serial.status;
  EXPECT_FALSE(serial.parallel);
  request.parallelism = 4;
  QueryResponse parallel = service.ExecuteNow(request);
  ASSERT_TRUE(parallel.status.ok()) << parallel.status;
  EXPECT_TRUE(parallel.parallel);
  ASSERT_EQ(parallel.answers.size(), serial.answers.size());
  for (size_t i = 0; i < serial.answers.size(); ++i) {
    EXPECT_EQ(parallel.answers[i].root, serial.answers[i].root);
    EXPECT_EQ(parallel.answers[i].cost, serial.answers[i].cost);
  }
  EXPECT_GT(service.GetSnapshot().parallel_tasks, 0u);
}

TEST(QueryServiceTest, SmallPlanStaysInlineUnderGranularityFloor) {
  Database db = MakeDb();
  // The default parallel_min_work floor dwarfs this corpus's postings:
  // a parallel request must decline fan-out (no tasks, parallel=false)
  // and still answer identically to serial.
  QueryService service(db, ServiceOptions{.num_threads = 2});
  QueryRequest request;
  request.query_text = R"(cd[title["piano" or "goldberg"]])";
  request.exec.n = SIZE_MAX;
  request.bypass_cache = true;
  request.parallelism = 1;
  QueryResponse serial = service.ExecuteNow(request);
  ASSERT_TRUE(serial.status.ok()) << serial.status;
  request.parallelism = 4;
  QueryResponse parallel = service.ExecuteNow(request);
  ASSERT_TRUE(parallel.status.ok()) << parallel.status;
  EXPECT_FALSE(parallel.parallel);
  EXPECT_EQ(service.GetSnapshot().parallel_tasks, 0u);
  ASSERT_EQ(parallel.answers.size(), serial.answers.size());
  for (size_t i = 0; i < serial.answers.size(); ++i) {
    EXPECT_EQ(parallel.answers[i].root, serial.answers[i].root);
    EXPECT_EQ(parallel.answers[i].cost, serial.answers[i].cost);
  }
}

TEST(QueryServiceTest, ParallelAndSerialShareCacheEntries) {
  Database db = MakeDb();
  QueryService service(db, ServiceOptions{.num_threads = 2});
  QueryRequest request;
  request.query_text = R"(cd[title["piano" or "goldberg"]])";
  request.parallelism = 4;
  QueryResponse first = service.ExecuteNow(request);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.cache_hit);
  // Parallelism does not affect results, so a serial request may serve
  // from the parallel run's entry.
  request.parallelism = 1;
  QueryResponse second = service.ExecuteNow(request);
  EXPECT_TRUE(second.cache_hit);
}

TEST(QueryServiceTest, DestructionResolvesQueuedFuturesUnavailable) {
  Database db = MakeDb();
  std::future<QueryResponse> running;
  std::future<QueryResponse> queued;
  std::thread releaser;
  {
    QueryService service(
        db, ServiceOptions{.num_threads = 1, .queue_capacity = 8});
    // Park the only worker inside a request via a blocking cancellation
    // hook, then queue a second request behind it.
    std::promise<void> release;
    std::shared_future<void> gate(release.get_future());
    auto started = std::make_shared<std::promise<void>>();
    std::future<void> started_future = started->get_future();
    QueryRequest blocker;
    blocker.query_text = kQuery;
    blocker.exec.schema.cancelled = [gate, started]() mutable {
      if (started != nullptr) {
        started->set_value();
        started.reset();
      }
      gate.wait();
      return false;
    };
    running = service.Submit(blocker);
    started_future.wait();
    QueryRequest waiting;
    waiting.query_text = kQuery;
    queued = service.Submit(waiting);
    // Unblock the worker only once the queued request's future resolves
    // — which abandonment does during ~QueryService. In-flight work is
    // never abandoned, so `running` still completes normally.
    releaser = std::thread([&queued, release = std::move(release)]() mutable {
      queued.wait();
      release.set_value();
    });
  }
  releaser.join();
  QueryResponse abandoned = queued.get();
  EXPECT_TRUE(abandoned.status.IsUnavailable()) << abandoned.status;
  QueryResponse finished = running.get();
  EXPECT_TRUE(finished.status.ok()) << finished.status;
}

TEST(QueryServiceTest, MetricsDumpCoversLifecycle) {
  Database db = MakeDb();
  QueryService service(db, ServiceOptions{.num_threads = 1});
  QueryRequest request;
  request.query_text = kQuery;
  service.ExecuteNow(request);
  service.ExecuteNow(request);
  std::string dump = service.DumpMetrics();
  for (const char* key :
       {"queries_submitted 2", "queries_completed 2", "queries_rejected 0",
        "queries_deadline_exceeded 0", "queue_depth", "queries_running 0",
        "queue_wait_us", "exec_latency_us", "total_latency_us",
        "cache_hits 1", "cache_misses 1", "cache_hit_rate 0.5000",
        "cache_evictions 0"}) {
    EXPECT_NE(dump.find(key), std::string::npos)
        << "missing `" << key << "` in:\n"
        << dump;
  }
}

}  // namespace
}  // namespace approxql::service
