// Thread-safety of the Database const query paths (the contract the
// service layer builds on): 8 threads hammer one shared Database with a
// mix of Execute (all three strategies), ExecuteStream and Explain and
// every thread must observe results identical to a serial baseline.
// Each operation's output is serialized to a canonical string so the
// comparison is byte-exact; comparisons happen on the main thread after
// joining (gtest assertions are not thread-safe).
//
// The same property is then checked through the QueryService: a
// cache-enabled service under 8 concurrent clients must return exactly
// the serial answers for every request.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "service/query_service.h"

namespace approxql {
namespace {

using engine::Database;
using engine::ExecOptions;
using engine::Strategy;

constexpr size_t kThreads = 8;
constexpr size_t kResultBound = 10;

Database MakeSyntheticDb() {
  gen::XmlGenOptions options;
  options.seed = 20020314;  // EDBT 2002 ;-)
  options.total_elements = 4000;
  options.vocabulary = 800;
  gen::XmlGenerator generator(options);
  cost::CostModel model;
  auto tree = generator.GenerateTree(model);
  APPROXQL_CHECK(tree.ok()) << tree.status();
  auto db = Database::FromDataTree(std::move(tree).value(), model);
  APPROXQL_CHECK(db.ok()) << db.status();
  return std::move(db).value();
}

std::vector<std::string> MakeQueries(const Database& db) {
  gen::QueryGenOptions options;
  options.seed = 99;
  options.renamings_per_label = 3;
  gen::QueryGenerator generator(db, options);
  std::vector<std::string> queries;
  constexpr std::string_view kPatterns[] = {gen::kPattern1, gen::kPattern2,
                                            gen::kPattern3};
  for (size_t i = 0; i < 12; ++i) {
    auto generated = generator.Generate(kPatterns[i % 3]);
    APPROXQL_CHECK(generated.ok()) << generated.status();
    queries.push_back(std::move(generated->text));
  }
  return queries;
}

// One mixed operation per (query, op) pair, result canonicalized.
enum class Op {
  kExecuteSchema = 0,
  kExecuteDirect,
  kExecuteStream,
  kExplain,
  kOpCount
};
constexpr size_t kOpCount = static_cast<size_t>(Op::kOpCount);

std::string RunOp(const Database& db, const std::string& query, Op op) {
  std::string out;
  switch (op) {
    case Op::kExecuteSchema:
    case Op::kExecuteDirect: {
      ExecOptions exec;
      exec.strategy =
          op == Op::kExecuteSchema ? Strategy::kSchema : Strategy::kDirect;
      exec.n = kResultBound;
      auto answers = db.Execute(query, exec);
      if (!answers.ok()) return "error: " + answers.status().ToString();
      for (const auto& answer : *answers) {
        out += std::to_string(answer.root) + ":" +
               std::to_string(answer.cost) + ";";
      }
      return out;
    }
    case Op::kExecuteStream: {
      ExecOptions exec;
      exec.n = kResultBound;
      auto stream = db.ExecuteStream(query, exec);
      if (!stream.ok()) return "error: " + stream.status().ToString();
      for (size_t i = 0; i < kResultBound; ++i) {
        auto answer = stream->Next();
        if (!answer.has_value()) break;
        out += std::to_string(answer->root) + ":" +
               std::to_string(answer->cost) + ";";
      }
      return out;
    }
    case Op::kExplain: {
      ExecOptions exec;
      exec.n = kResultBound;
      auto explanations = db.Explain(query, exec);
      if (!explanations.ok()) {
        return "error: " + explanations.status().ToString();
      }
      for (const auto& explanation : *explanations) {
        out += std::to_string(explanation.cost) + "|" +
               explanation.skeleton + "|" +
               std::to_string(explanation.result_count) + ";";
      }
      return out;
    }
    case Op::kOpCount:
      break;
  }
  return out;
}

TEST(ConcurrencyTest, MixedOperationsMatchSerialBaseline) {
  Database db = MakeSyntheticDb();
  std::vector<std::string> queries = MakeQueries(db);

  // Serial baseline: every (query, op) combination once.
  std::vector<std::vector<std::string>> baseline(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    for (size_t op = 0; op < kOpCount; ++op) {
      baseline[q].push_back(RunOp(db, queries[q], static_cast<Op>(op)));
    }
  }

  // 8 threads, each running every combination in a thread-dependent
  // order (staggered start op) so different operations overlap.
  std::vector<std::vector<std::vector<std::string>>> observed(
      kThreads, std::vector<std::vector<std::string>>(
                    queries.size(), std::vector<std::string>(kOpCount)));
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &queries, &observed, t] {
      for (size_t q = 0; q < queries.size(); ++q) {
        for (size_t i = 0; i < kOpCount; ++i) {
          size_t op = (t + q + i) % kOpCount;
          observed[t][q][op] = RunOp(db, queries[q], static_cast<Op>(op));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t q = 0; q < queries.size(); ++q) {
      for (size_t op = 0; op < kOpCount; ++op) {
        EXPECT_EQ(observed[t][q][op], baseline[q][op])
            << "thread " << t << " query `" << queries[q] << "` op " << op;
      }
    }
  }
}

TEST(ConcurrencyTest, ServiceUnderConcurrentClientsMatchesSerial) {
  Database db = MakeSyntheticDb();
  std::vector<std::string> queries = MakeQueries(db);

  std::vector<std::string> baseline;
  baseline.reserve(queries.size());
  for (const std::string& query : queries) {
    baseline.push_back(RunOp(db, query, Op::kExecuteSchema));
  }

  service::ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 1024;
  options.cache_capacity = 64;
  service::QueryService service(db, options);

  std::vector<std::vector<std::string>> observed(
      kThreads, std::vector<std::string>(queries.size()));
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&service, &queries, &observed, t] {
      for (size_t q = 0; q < queries.size(); ++q) {
        // Spread start positions so cache hits and misses interleave.
        size_t index = (q + t) % queries.size();
        service::QueryRequest request;
        request.query_text = queries[index];
        request.exec.n = kResultBound;
        service::QueryResponse response =
            service.Submit(std::move(request)).get();
        std::string& out = observed[t][index];
        if (!response.status.ok()) {
          out = "error: " + response.status.ToString();
          continue;
        }
        for (const auto& answer : response.answers) {
          out += std::to_string(answer.root) + ":" +
                 std::to_string(answer.cost) + ";";
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t q = 0; q < queries.size(); ++q) {
      EXPECT_EQ(observed[t][q], baseline[q])
          << "client " << t << " query `" << queries[q] << "`";
    }
  }

  service::QueryService::Snapshot snapshot = service.GetSnapshot();
  EXPECT_EQ(snapshot.submitted, kThreads * queries.size());
  EXPECT_EQ(snapshot.completed, kThreads * queries.size());
  EXPECT_EQ(snapshot.rejected, 0u);
  // Identical repeated queries must have produced cache hits.
  EXPECT_GT(snapshot.cache.hits, 0u);
  EXPECT_EQ(snapshot.cache.hits + snapshot.cache.misses,
            kThreads * queries.size());
}

}  // namespace
}  // namespace approxql
