// The adaptive-granularity decision functions are pure over vectors;
// these tests pin the exact batch layouts RunParallel builds from them,
// since a layout change silently shifts which slots share a task.
#include "service/granularity.h"

#include <gtest/gtest.h>

#include <vector>

#include "index/label_index.h"

namespace approxql::service {
namespace {

constexpr size_t kUnknown = index::PostingSource::kUnknownSize;

using Ends = std::vector<size_t>;

TEST(EstimateTotalWorkTest, SumsKnownEstimates) {
  EXPECT_EQ(EstimateTotalWork({}), 0u);
  EXPECT_EQ(EstimateTotalWork({7}), 7u);
  EXPECT_EQ(EstimateTotalWork({1, 2, 3, 0, 4}), 10u);
}

TEST(EstimateTotalWorkTest, UnknownTermSaturates) {
  EXPECT_EQ(EstimateTotalWork({kUnknown}), kUnknown);
  EXPECT_EQ(EstimateTotalWork({5, kUnknown, 5}), kUnknown);
  // Unknown compares >= every threshold: it always clears the floor.
  EXPECT_GE(EstimateTotalWork({kUnknown}), size_t{1} << 20);
}

TEST(EstimateTotalWorkTest, OverflowSaturatesInsteadOfWrapping) {
  const size_t half = kUnknown / 2 + 1;
  EXPECT_EQ(EstimateTotalWork({half, half}), kUnknown);
  EXPECT_EQ(EstimateTotalWork({kUnknown - 1, 1}), kUnknown);
  EXPECT_EQ(EstimateTotalWork({kUnknown - 1, 0}), kUnknown - 1);
}

TEST(PackBatchesTest, EmptyAndSingleton) {
  EXPECT_EQ(PackBatches({}, 100), Ends{});
  EXPECT_EQ(PackBatches({5}, 100), Ends{1});
  EXPECT_EQ(PackBatches({500}, 100), Ends{1});
}

TEST(PackBatchesTest, TargetZeroIsOneSlotPerBatch) {
  EXPECT_EQ(PackBatches({10, 20, 30}, 0), (Ends{1, 2, 3}));
  EXPECT_EQ(PackBatches({kUnknown, 0}, 0), (Ends{1, 2}));
}

TEST(PackBatchesTest, GreedyPackingClosesAtTarget) {
  // 60+50 >= 100 closes; 10+20 trails as a final partial batch.
  EXPECT_EQ(PackBatches({60, 50, 10, 20}, 100), (Ends{2, 4}));
  // A single slot over target is its own batch.
  EXPECT_EQ(PackBatches({300, 1, 1}, 100), (Ends{1, 3}));
  // Exactly at target closes too.
  EXPECT_EQ(PackBatches({100, 100}, 100), (Ends{1, 2}));
}

TEST(PackBatchesTest, TinySlotsCollapseIntoOneBatch) {
  EXPECT_EQ(PackBatches({1, 1, 1, 1, 1}, 100), Ends{5});
}

TEST(PackBatchesTest, UnknownSlotOwnsItsBatch) {
  // The open batch closes before the unknown, the unknown stands alone,
  // and packing resumes after it.
  EXPECT_EQ(PackBatches({10, 10, kUnknown, 10, 10}, 100),
            (Ends{2, 3, 5}));
  EXPECT_EQ(PackBatches({kUnknown, kUnknown}, 100), (Ends{1, 2}));
  EXPECT_EQ(PackBatches({kUnknown, 5}, 100), (Ends{1, 2}));
}

TEST(PackBatchesTest, ZeroEstimatesStillCovered) {
  // Slots estimated at zero (absent labels) must still be assigned to
  // some batch — the plan materializes them regardless.
  EXPECT_EQ(PackBatches({0, 0, 0}, 100), Ends{3});
  EXPECT_EQ(PackBatches({0, kUnknown, 0}, 100), (Ends{1, 2, 3}));
}

TEST(PackBatchesTest, EndsPartitionTheInput) {
  // Property: whatever the estimates, the offsets are strictly
  // increasing and end at n — every slot lands in exactly one batch.
  const std::vector<std::vector<size_t>> cases = {
      {3, 1, 4, 1, 5, 9, 2, 6},
      {kUnknown, 1, kUnknown, 1},
      {0, 0, kUnknown},
      {250, 250, 250, 250},
  };
  for (const auto& estimates : cases) {
    for (size_t target : {size_t{0}, size_t{1}, size_t{10}, size_t{1000}}) {
      const Ends ends = PackBatches(estimates, target);
      ASSERT_FALSE(ends.empty());
      size_t prev = 0;
      for (size_t end : ends) {
        EXPECT_GT(end, prev);
        prev = end;
      }
      EXPECT_EQ(ends.back(), estimates.size());
    }
  }
}

}  // namespace
}  // namespace approxql::service
