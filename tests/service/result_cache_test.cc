#include "service/result_cache.h"

#include <gtest/gtest.h>

namespace approxql::service {
namespace {

using engine::QueryAnswer;
using engine::Strategy;

CacheKey Key(const std::string& query, size_t n = 10,
             uint32_t fingerprint = 1,
             Strategy strategy = Strategy::kSchema) {
  CacheKey key;
  key.normalized_query = query;
  key.strategy = strategy;
  key.n = n;
  key.cost_fingerprint = fingerprint;
  return key;
}

std::vector<QueryAnswer> Answers(doc::NodeId root, cost::Cost cost) {
  return {QueryAnswer{root, cost}};
}

TEST(ResultCacheTest, HitReturnsInsertedAnswers) {
  ResultCache cache(4);
  cache.Insert(Key("a"), Answers(7, 3));
  auto hit = cache.Lookup(Key("a"));
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0].root, 7u);
  EXPECT_EQ((*hit)[0].cost, 3);
  EXPECT_EQ(cache.Lookup(Key("b")), nullptr);
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
}

TEST(ResultCacheTest, CapacityEvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.Insert(Key("a"), Answers(1, 0));
  cache.Insert(Key("b"), Answers(2, 0));
  // Touch "a" so "b" becomes the LRU entry.
  ASSERT_NE(cache.Lookup(Key("a")), nullptr);
  cache.Insert(Key("c"), Answers(3, 0));
  EXPECT_NE(cache.Lookup(Key("a")), nullptr);
  EXPECT_EQ(cache.Lookup(Key("b")), nullptr);
  EXPECT_NE(cache.Lookup(Key("c")), nullptr);
  EXPECT_EQ(cache.GetStats().evictions, 1u);
  EXPECT_EQ(cache.GetStats().size, 2u);
}

TEST(ResultCacheTest, EveryKeyComponentDiscriminates) {
  ResultCache cache(16);
  cache.Insert(Key("a", 10, 1, Strategy::kSchema), Answers(1, 0));
  // Different n, fingerprint, or strategy must all miss.
  EXPECT_EQ(cache.Lookup(Key("a", 20, 1, Strategy::kSchema)), nullptr);
  EXPECT_EQ(cache.Lookup(Key("a", 10, 2, Strategy::kSchema)), nullptr);
  EXPECT_EQ(cache.Lookup(Key("a", 10, 1, Strategy::kDirect)), nullptr);
  EXPECT_NE(cache.Lookup(Key("a", 10, 1, Strategy::kSchema)), nullptr);
}

TEST(ResultCacheTest, BackendFingerprintDiscriminates) {
  // The same query against a different backend/shard layout (a
  // repartitioned corpus is a different corpus as far as cached entries
  // are concerned) must miss.
  ResultCache cache(16);
  CacheKey single = Key("a");
  single.backend_fingerprint = 0xC0FFEE;
  CacheKey sharded = single;
  sharded.backend_fingerprint = 0xBEEF;
  cache.Insert(single, Answers(1, 0));
  EXPECT_EQ(cache.Lookup(sharded), nullptr);
  EXPECT_NE(cache.Lookup(single), nullptr);
}

TEST(ResultCacheTest, FingerprintDistinguishesCostModels) {
  cost::CostModel a;
  cost::CostModel b;
  b.SetDeleteCost(NodeType::kText, "piano", 5);
  EXPECT_NE(FingerprintCostModel(a), FingerprintCostModel(b));
  EXPECT_EQ(FingerprintCostModel(a), FingerprintCostModel(cost::CostModel()));
}

TEST(ResultCacheTest, InsertRefreshesExistingEntry) {
  ResultCache cache(2);
  cache.Insert(Key("a"), Answers(1, 0));
  cache.Insert(Key("a"), Answers(9, 4));  // refresh, no growth
  EXPECT_EQ(cache.GetStats().size, 1u);
  auto hit = cache.Lookup(Key("a"));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ((*hit)[0].root, 9u);
}

TEST(ResultCacheTest, InvalidateDropsEverything) {
  ResultCache cache(8);
  cache.Insert(Key("a"), Answers(1, 0));
  cache.Insert(Key("b"), Answers(2, 0));
  cache.Invalidate();
  EXPECT_EQ(cache.Lookup(Key("a")), nullptr);
  EXPECT_EQ(cache.Lookup(Key("b")), nullptr);
  ResultCache::Stats stats = cache.GetStats();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.invalidations, 2u);
  // Invalidation is not an eviction.
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  cache.Insert(Key("a"), Answers(1, 0));
  EXPECT_EQ(cache.Lookup(Key("a")), nullptr);
  EXPECT_EQ(cache.GetStats().size, 0u);
}

TEST(ResultCacheTest, HitSurvivesEvictionAndInvalidate) {
  // Lookup hands out a shared reference, not a copy tied to the slot:
  // the answers must stay readable after the entry is evicted,
  // refreshed, or the whole cache is invalidated.
  ResultCache cache(1);
  cache.Insert(Key("a"), Answers(7, 3));
  CachedAnswers held = cache.Lookup(Key("a"));
  ASSERT_NE(held, nullptr);
  cache.Insert(Key("b"), Answers(8, 1));  // evicts "a"
  cache.Insert(Key("b"), Answers(9, 2));  // refreshes "b" in place
  cache.Invalidate();
  ASSERT_EQ(held->size(), 1u);
  EXPECT_EQ((*held)[0].root, 7u);
  EXPECT_EQ((*held)[0].cost, 3);
}

TEST(ResultCacheTest, EmptyAnswerListsAreCacheable) {
  // A query with no results is still a complete (cacheable) answer.
  ResultCache cache(4);
  cache.Insert(Key("nothing"), {});
  auto hit = cache.Lookup(Key("nothing"));
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->empty());
}

}  // namespace
}  // namespace approxql::service
