#include "service/workload.h"

#include <gtest/gtest.h>

#include <string>

namespace approxql::service {
namespace {

TEST(WorkloadTest, ParsesQueriesSkippingBlanksAndComments) {
  const char kText[] =
      "# serve workload\n"
      "\n"
      "cd[title]\n"
      "   \t \n"
      "  cd[composer[\"bach\"]]  \n"
      "# trailing comment\n";
  Workload workload = ScanWorkload(kText);
  EXPECT_TRUE(workload.errors.empty());
  ASSERT_EQ(workload.queries.size(), 2u);
  EXPECT_EQ(workload.queries[0], "cd[title]");
  EXPECT_EQ(workload.queries[1], "cd[composer[\"bach\"]]");
}

TEST(WorkloadTest, ScanReportsEveryBadLineWithItsNumber) {
  const char kText[] =
      "cd[title]\n"     // line 1: ok
      "cd[oops\n"       // line 2: unbalanced
      "# comment\n"     // line 3: skipped
      "]]]broken\n"     // line 4: garbage
      "cd[composer]\n"  // line 5: ok
      "\n";
  Workload workload = ScanWorkload(kText);
  EXPECT_EQ(workload.queries.size(), 2u);
  ASSERT_EQ(workload.errors.size(), 2u);
  EXPECT_EQ(workload.errors[0].line, 2u);
  EXPECT_EQ(workload.errors[0].text, "cd[oops");
  EXPECT_FALSE(workload.errors[0].status.ok());
  EXPECT_EQ(workload.errors[1].line, 4u);
  EXPECT_EQ(workload.errors[1].text, "]]]broken");
  // ToString is what the drivers print: line, text, and the parse error.
  std::string printed = workload.errors[0].ToString();
  EXPECT_NE(printed.find("line 2"), std::string::npos);
  EXPECT_NE(printed.find("cd[oops"), std::string::npos);
}

TEST(WorkloadTest, StrictParseFailsOnFirstBadLineAndCountsTheRest) {
  auto parsed = ParseWorkload("cd[a\ncd[b\ncd[c\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 1"), std::string::npos);
  EXPECT_NE(parsed.status().message().find("+2 more bad lines"),
            std::string::npos);
}

TEST(WorkloadTest, StrictParseSingleBadLineHasNoMoreSuffix) {
  auto parsed = ParseWorkload("cd[title]\ncd[oops\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().message().find("more bad lines"),
            std::string::npos);
}

TEST(WorkloadTest, EmptyWorkloadIsInvalid) {
  auto parsed = ParseWorkload("# only comments\n\n   \n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kInvalidArgument);
}

TEST(WorkloadTest, MissingFileIsIoError) {
  auto parsed = LoadWorkloadFile("/nonexistent/workload.txt");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), util::StatusCode::kIoError);
}

TEST(WorkloadTest, LastLineWithoutNewlineIsParsed) {
  Workload workload = ScanWorkload("cd[title]");
  EXPECT_TRUE(workload.errors.empty());
  ASSERT_EQ(workload.queries.size(), 1u);
  EXPECT_EQ(workload.queries[0], "cd[title]");
}

}  // namespace
}  // namespace approxql::service
