#include "schema/schema.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/random.h"

namespace approxql::schema {
namespace {

using cost::CostModel;
using doc::DataTree;
using doc::DataTreeBuilder;
using doc::NodeId;

DataTree BuildTree(std::string_view xml) {
  DataTreeBuilder builder;
  auto s = builder.AddDocumentXml(xml);
  EXPECT_TRUE(s.ok()) << s;
  auto tree = std::move(builder).Build(CostModel());
  EXPECT_TRUE(tree.ok());
  return std::move(tree).value();
}

constexpr std::string_view kCatalog =
    "<catalog>"
    "<cd><title>piano concerto</title><composer>rachmaninov</composer></cd>"
    "<cd><title>cello sonata</title><composer>chopin</composer></cd>"
    "<cd><tracks><track><title>vivace</title></track></tracks></cd>"
    "</catalog>";

TEST(SchemaTest, EveryLabelTypePathExactlyOnce) {
  DataTree tree = BuildTree(kCatalog);
  Schema schema = Schema::Build(&tree, CostModel());

  // Collect the distinct label-type paths of the data tree (text nodes
  // compacted to <text>).
  std::set<std::string> data_paths;
  for (NodeId id = 0; id < tree.size(); ++id) {
    std::string path;
    std::vector<NodeId> chain;
    for (NodeId cursor = id;; cursor = tree.node(cursor).parent) {
      chain.push_back(cursor);
      if (tree.node(cursor).parent == doc::kInvalidNode) break;
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!path.empty()) path.push_back('/');
      path.append(tree.node(*it).type == NodeType::kText
                      ? std::string(kTextClassLabel)
                      : std::string(tree.label(*it)));
    }
    data_paths.insert(path);
  }

  std::set<std::string> schema_paths;
  for (uint32_t id = 0; id < schema.size(); ++id) {
    bool inserted =
        schema_paths.insert(schema.PathOf(id, tree.labels())).second;
    EXPECT_TRUE(inserted) << "duplicate path in schema";
  }
  EXPECT_EQ(schema_paths, data_paths);
}

TEST(SchemaTest, ClassPreservesLabelTypeAndParent) {
  DataTree tree = BuildTree(kCatalog);
  Schema schema = Schema::Build(&tree, CostModel());
  for (NodeId id = 0; id < tree.size(); ++id) {
    uint32_t cls = schema.ClassOf(id);
    const doc::DataNode& data_node = tree.node(id);
    const doc::DataNode& class_node = schema.nodes()[cls];
    EXPECT_EQ(class_node.type, data_node.type);
    if (data_node.type == NodeType::kStruct) {
      EXPECT_EQ(class_node.label, data_node.label);
    } else {
      EXPECT_EQ(class_node.label, schema.text_class_label());
    }
    if (data_node.parent != doc::kInvalidNode) {
      EXPECT_EQ(class_node.parent, schema.ClassOf(data_node.parent))
          << "class function must preserve parent-child edges";
    }
  }
}

TEST(SchemaTest, CompactionSharesTextClass) {
  DataTree tree = BuildTree(kCatalog);
  Schema schema = Schema::Build(&tree, CostModel());
  // "piano" and "cello" occur under the same path catalog/cd/title, so
  // they must map to the same (single) text class.
  doc::LabelId piano = tree.labels().Find("piano");
  doc::LabelId cello = tree.labels().Find("cello");
  const index::Posting* p1 = schema.label_index().Fetch(NodeType::kText, piano);
  const index::Posting* p2 = schema.label_index().Fetch(NodeType::kText, cello);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  ASSERT_EQ(p1->size(), 1u);
  EXPECT_EQ(*p1, *p2);
  // "vivace" occurs under track/title — a different class.
  doc::LabelId vivace = tree.labels().Find("vivace");
  const index::Posting* p3 =
      schema.label_index().Fetch(NodeType::kText, vivace);
  ASSERT_NE(p3, nullptr);
  EXPECT_NE((*p3)[0], (*p1)[0]);
}

TEST(SchemaTest, StructIndexHasOneEntryPerClass) {
  DataTree tree = BuildTree(kCatalog);
  Schema schema = Schema::Build(&tree, CostModel());
  doc::LabelId title = tree.labels().Find("title");
  const index::Posting* titles =
      schema.label_index().Fetch(NodeType::kStruct, title);
  ASSERT_NE(titles, nullptr);
  // cd/title and cd/tracks/track/title: two classes.
  EXPECT_EQ(titles->size(), 2u);
  doc::LabelId cd = tree.labels().Find("cd");
  const index::Posting* cds = schema.label_index().Fetch(NodeType::kStruct, cd);
  ASSERT_NE(cds, nullptr);
  EXPECT_EQ(cds->size(), 1u) << "all three cd elements share one class";
}

TEST(SchemaTest, SecondaryPostingsPartitionInstances) {
  DataTree tree = BuildTree(kCatalog);
  Schema schema = Schema::Build(&tree, CostModel());
  // Sum of all instance postings = all nodes except the super-root.
  size_t total = 0;
  for (NodeId id = 1; id < tree.size(); ++id) {
    uint32_t cls = schema.ClassOf(id);
    const index::Posting* posting =
        schema.secondary_index().Fetch(cls, tree.node(id).label);
    ASSERT_NE(posting, nullptr);
    EXPECT_TRUE(std::binary_search(posting->begin(), posting->end(), id));
    (void)total;
  }
  // Instances of the cd class are the three cd nodes.
  doc::LabelId cd = tree.labels().Find("cd");
  uint32_t cd_class =
      (*schema.label_index().Fetch(NodeType::kStruct, cd))[0];
  const index::Posting* cd_instances =
      schema.secondary_index().Fetch(cd_class, cd);
  ASSERT_NE(cd_instances, nullptr);
  EXPECT_EQ(cd_instances->size(), 3u);
}

TEST(SchemaTest, EncodingInvariants) {
  DataTree tree = BuildTree(kCatalog);
  CostModel model;
  model.SetInsertCost(NodeType::kStruct, "cd", 2);
  model.SetInsertCost(NodeType::kStruct, "tracks", 4);
  Schema schema = Schema::Build(&tree, model);
  const auto& nodes = schema.nodes();
  for (uint32_t id = 0; id < nodes.size(); ++id) {
    EXPECT_GE(nodes[id].bound, id);
    if (id > 0) {
      EXPECT_LT(nodes[id].parent, id);
      const auto& parent = nodes[nodes[id].parent];
      EXPECT_EQ(nodes[id].pathcost,
                cost::Add(parent.pathcost, parent.inscost));
    }
  }
}

TEST(SchemaTest, ClassDistanceEqualsInstanceDistance) {
  DataTree tree = BuildTree(kCatalog);
  CostModel model;
  model.SetInsertCost(NodeType::kStruct, "track", 3);
  model.SetInsertCost(NodeType::kStruct, "tracks", 2);
  model.SetInsertCost(NodeType::kStruct, "title", 7);
  // Rebuild the tree with the model so data pathcosts use it too.
  DataTreeBuilder builder;
  ASSERT_TRUE(builder.AddDocumentXml(kCatalog).ok());
  auto tree2 = std::move(builder).Build(model);
  ASSERT_TRUE(tree2.ok());
  Schema schema = Schema::Build(&*tree2, model);
  // Section 7.1: all instance pairs of (u, v) have the same distance as
  // their classes.
  for (NodeId u = 1; u < tree2->size(); ++u) {
    for (NodeId v = u + 1; v <= tree2->node(u).bound; ++v) {
      uint32_t cu = schema.ClassOf(u);
      uint32_t cv = schema.ClassOf(v);
      ASSERT_TRUE(cu == cv || schema.IsAncestor(cu, cv));
      EXPECT_EQ(tree2->Distance(u, v), schema.Distance(cu, cv))
          << "u=" << u << " v=" << v;
    }
  }
}

TEST(SchemaTest, RecursiveStructuresFold) {
  // part/part/part nests: each depth is its own label-type path.
  DataTree tree = BuildTree(
      "<part><part><part><name>bolt</name></part></part>"
      "<part><name>nut</name></part></part>");
  Schema schema = Schema::Build(&tree, CostModel());
  // Paths: <root>, /part, /part/part, /part/part/part, plus name+<text>
  // at depths 2 and 3.
  doc::LabelId part = tree.labels().Find("part");
  const index::Posting* parts =
      schema.label_index().Fetch(NodeType::kStruct, part);
  ASSERT_NE(parts, nullptr);
  EXPECT_EQ(parts->size(), 3u) << "three distinct part depths";
}

// Property: schema of a random tree contains each path once and class
// mapping preserves structure.
class SchemaRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(SchemaRandomTest, Invariants) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 977 + 5);
  DataTreeBuilder builder;
  int depth = 0;
  for (int step = 0; step < 400; ++step) {
    int choice = static_cast<int>(rng.Uniform(4));
    if (choice == 0 && depth > 0) {
      builder.EndElement();
      --depth;
    } else if (choice == 3) {
      builder.AddWord("w" + std::to_string(rng.Uniform(30)));
    } else {
      builder.StartElement("e" + std::to_string(rng.Uniform(5)));
      ++depth;
    }
  }
  while (depth-- > 0) builder.EndElement();
  auto tree = std::move(builder).Build(CostModel());
  ASSERT_TRUE(tree.ok());
  Schema schema = Schema::Build(&*tree, CostModel());

  // Paths unique.
  std::set<std::string> paths;
  for (uint32_t id = 0; id < schema.size(); ++id) {
    EXPECT_TRUE(paths.insert(schema.PathOf(id, tree->labels())).second);
  }
  // Class mapping preserves parent-child and type.
  for (NodeId id = 1; id < tree->size(); ++id) {
    uint32_t cls = schema.ClassOf(id);
    EXPECT_EQ(schema.nodes()[cls].type, tree->node(id).type);
    EXPECT_EQ(schema.nodes()[cls].parent,
              schema.ClassOf(tree->node(id).parent));
  }
  // Every instance posting is sorted.
  for (NodeId id = 1; id < tree->size(); ++id) {
    const index::Posting* posting = schema.secondary_index().Fetch(
        schema.ClassOf(id), tree->node(id).label);
    ASSERT_NE(posting, nullptr);
    EXPECT_TRUE(std::is_sorted(posting->begin(), posting->end()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchemaRandomTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace approxql::schema
