// Hostile-input tests for DataTree::Deserialize: claimed label lengths and
// node counts must be validated against the remaining bytes before any
// allocation — a short hostile blob must produce Corruption, not a
// 100+ GB resize.

#include <cstdint>
#include <string>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "gtest/gtest.h"
#include "util/varint.h"

namespace approxql::doc {
namespace {

constexpr uint64_t kHugeCount = uint64_t{1} << 40;

TEST(DataTreeHostileTest, HugeNodeCount) {
  std::string blob;
  util::PutVarint64(&blob, 0);               // no labels
  // Within the 32-bit id space (so it passes the id-width check) but far
  // past the remaining bytes: would be a ~32 GB resize without the cap.
  util::PutVarint64(&blob, uint64_t{1} << 30);
  auto result = DataTree::Deserialize(blob, cost::CostModel());
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("overruns"), std::string::npos)
      << result.status().message();
}

TEST(DataTreeHostileTest, NodeCountJustPastPayload) {
  std::string blob;
  util::PutVarint64(&blob, 1);  // one label: "a"
  util::PutVarint64(&blob, 1);
  blob += "a";
  util::PutVarint64(&blob, 3);  // claims 3 nodes...
  util::PutVarint32(&blob, 0);  // ...supplies only the root
  util::PutVarint32(&blob, 0);
  EXPECT_FALSE(DataTree::Deserialize(blob, cost::CostModel()).ok());
}

TEST(DataTreeHostileTest, HugeLabelLength) {
  std::string blob;
  util::PutVarint64(&blob, 1);           // one label...
  util::PutVarint64(&blob, kHugeCount);  // ...claiming 2^40 bytes
  blob += "a";
  EXPECT_FALSE(DataTree::Deserialize(blob, cost::CostModel()).ok());
}

TEST(DataTreeHostileTest, HugeLabelCount) {
  std::string blob;
  util::PutVarint64(&blob, kHugeCount);  // label table truncates immediately
  EXPECT_FALSE(DataTree::Deserialize(blob, cost::CostModel()).ok());
}

}  // namespace
}  // namespace approxql::doc
