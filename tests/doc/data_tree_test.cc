#include "doc/data_tree.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/random.h"

namespace approxql::doc {
namespace {

using cost::CostModel;

// Figure 1(b)-style catalog document.
constexpr std::string_view kCatalogXml =
    "<catalog>"
    "<cd><title>Piano concerto</title><composer>Rachmaninov</composer></cd>"
    "<cd><tracks><track><title>Vivace</title></track></tracks></cd>"
    "</catalog>";

DataTree BuildCatalog(const CostModel& model = CostModel()) {
  DataTreeBuilder builder;
  auto status = builder.AddDocumentXml(kCatalogXml);
  EXPECT_TRUE(status.ok()) << status;
  auto tree = std::move(builder).Build(model);
  EXPECT_TRUE(tree.ok()) << tree.status();
  return std::move(tree).value();
}

TEST(DataTreeBuilderTest, SuperRootAndStructure) {
  DataTree tree = BuildCatalog();
  EXPECT_EQ(tree.label(tree.root()), kSuperRootLabel);
  NodeId catalog = tree.FirstChild(tree.root());
  ASSERT_NE(catalog, kInvalidNode);
  EXPECT_EQ(tree.label(catalog), "catalog");
  EXPECT_EQ(tree.NextSibling(catalog), kInvalidNode);
}

TEST(DataTreeBuilderTest, WordsBecomeTextLeaves) {
  DataTree tree = BuildCatalog();
  // Find "title" under first cd and verify two word children.
  NodeId catalog = tree.FirstChild(tree.root());
  NodeId cd = tree.FirstChild(catalog);
  EXPECT_EQ(tree.label(cd), "cd");
  NodeId title = tree.FirstChild(cd);
  EXPECT_EQ(tree.label(title), "title");
  NodeId word1 = tree.FirstChild(title);
  ASSERT_NE(word1, kInvalidNode);
  EXPECT_EQ(tree.node(word1).type, NodeType::kText);
  EXPECT_EQ(tree.label(word1), "piano");
  NodeId word2 = tree.NextSibling(word1);
  ASSERT_NE(word2, kInvalidNode);
  EXPECT_EQ(tree.label(word2), "concerto");
  EXPECT_EQ(tree.NextSibling(word2), kInvalidNode);
}

TEST(DataTreeBuilderTest, WordsAreLowercased) {
  DataTree tree = BuildCatalog();
  EXPECT_NE(tree.labels().Find("rachmaninov"), kInvalidLabel);
  EXPECT_EQ(tree.labels().Find("Rachmaninov"), kInvalidLabel);
}

TEST(DataTreeBuilderTest, AttributesBecomeStructTextPairs) {
  DataTreeBuilder builder;
  ASSERT_TRUE(builder.AddDocumentXml("<cd genre=\"classical music\"/>").ok());
  auto tree = std::move(builder).Build(CostModel());
  ASSERT_TRUE(tree.ok());
  NodeId cd = tree->FirstChild(tree->root());
  NodeId genre = tree->FirstChild(cd);
  ASSERT_NE(genre, kInvalidNode);
  EXPECT_EQ(tree->label(genre), "genre");
  EXPECT_EQ(tree->node(genre).type, NodeType::kStruct);
  NodeId w1 = tree->FirstChild(genre);
  ASSERT_NE(w1, kInvalidNode);
  EXPECT_EQ(tree->label(w1), "classical");
  NodeId w2 = tree->NextSibling(w1);
  ASSERT_NE(w2, kInvalidNode);
  EXPECT_EQ(tree->label(w2), "music");
}

TEST(DataTreeBuilderTest, MultipleDocuments) {
  DataTreeBuilder builder;
  ASSERT_TRUE(builder.AddDocumentXml("<a><x>1</x></a>").ok());
  ASSERT_TRUE(builder.AddDocumentXml("<b><y>2</y></b>").ok());
  auto tree = std::move(builder).Build(CostModel());
  ASSERT_TRUE(tree.ok());
  NodeId a = tree->FirstChild(tree->root());
  ASSERT_NE(a, kInvalidNode);
  NodeId b = tree->NextSibling(a);
  ASSERT_NE(b, kInvalidNode);
  EXPECT_EQ(tree->label(a), "a");
  EXPECT_EQ(tree->label(b), "b");
}

TEST(DataTreeBuilderTest, UnbalancedBuildFails) {
  DataTreeBuilder builder;
  builder.StartElement("unclosed");
  auto tree = std::move(builder).Build(CostModel());
  EXPECT_FALSE(tree.ok());
}

TEST(DataTreeEncodingTest, PreorderBoundInvariant) {
  DataTree tree = BuildCatalog();
  for (NodeId u = 0; u < tree.size(); ++u) {
    const DataNode& n = tree.node(u);
    EXPECT_GE(n.bound, u);
    if (n.parent != kInvalidNode) {
      EXPECT_LT(n.parent, u);
      EXPECT_LE(n.bound, tree.node(n.parent).bound);
      EXPECT_TRUE(tree.IsAncestor(n.parent, u));
    }
  }
  // Descendants of u are exactly the ids in (u, bound(u)].
  for (NodeId u = 0; u < tree.size(); ++u) {
    for (NodeId v = 0; v < tree.size(); ++v) {
      bool in_interval = v > u && v <= tree.node(u).bound;
      EXPECT_EQ(tree.IsAncestor(u, v), in_interval) << u << " " << v;
    }
  }
}

TEST(DataTreeEncodingTest, PathcostTelescopes) {
  CostModel model;
  model.SetInsertCost(NodeType::kStruct, "cd", 2);
  model.SetInsertCost(NodeType::kStruct, "tracks", 2);
  model.SetInsertCost(NodeType::kStruct, "track", 3);
  model.SetInsertCost(NodeType::kStruct, "title", 3);
  DataTree tree = BuildCatalog(model);
  for (NodeId u = 0; u < tree.size(); ++u) {
    const DataNode& n = tree.node(u);
    if (n.parent == kInvalidNode) {
      EXPECT_EQ(n.pathcost, 0);
    } else {
      EXPECT_EQ(n.pathcost, tree.node(n.parent).pathcost +
                                tree.node(n.parent).inscost);
    }
    if (n.type == NodeType::kText) {
      EXPECT_EQ(n.inscost, 0);
    }
  }
}

TEST(DataTreeEncodingTest, DistanceMatchesPaperExample) {
  // Paper Section 6.2: distance between tracks and a grandchild word
  // equals the sum of the insert costs of the nodes strictly between.
  CostModel model;
  model.SetInsertCost(NodeType::kStruct, "track", 3);
  model.SetInsertCost(NodeType::kStruct, "title", 3);
  DataTree tree = BuildCatalog(model);

  // Locate: cd2 -> tracks -> track -> title -> "vivace".
  NodeId catalog = tree.FirstChild(tree.root());
  NodeId cd1 = tree.FirstChild(catalog);
  NodeId cd2 = tree.NextSibling(cd1);
  NodeId tracks = tree.FirstChild(cd2);
  ASSERT_EQ(tree.label(tracks), "tracks");
  NodeId track = tree.FirstChild(tracks);
  NodeId title = tree.FirstChild(track);
  NodeId vivace = tree.FirstChild(title);
  ASSERT_EQ(tree.label(vivace), "vivace");

  // Between tracks and vivace lie track (3) and title (3).
  EXPECT_EQ(tree.Distance(tracks, vivace), 6);
  // Adjacent parent-child pairs have distance 0.
  EXPECT_EQ(tree.Distance(tracks, track), 0);
  EXPECT_EQ(tree.Distance(title, vivace), 0);
}

TEST(DataTreeTest, ToXmlReconstructsSubtree) {
  DataTree tree = BuildCatalog();
  NodeId catalog = tree.FirstChild(tree.root());
  NodeId cd = tree.FirstChild(catalog);
  xml::XmlElement element = tree.ToXml(cd);
  std::string xml = xml::WriteXml(element);
  EXPECT_EQ(xml,
            "<cd><title>piano concerto</title>"
            "<composer>rachmaninov</composer></cd>");
}

TEST(DataTreeTest, SerializeRoundTrip) {
  CostModel model;
  model.SetInsertCost(NodeType::kStruct, "title", 3);
  DataTree tree = BuildCatalog(model);
  std::string blob;
  tree.Serialize(&blob);
  auto restored = DataTree::Deserialize(blob, model);
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->size(), tree.size());
  for (NodeId id = 0; id < tree.size(); ++id) {
    EXPECT_EQ(restored->node(id).parent, tree.node(id).parent);
    EXPECT_EQ(restored->node(id).bound, tree.node(id).bound);
    EXPECT_EQ(restored->node(id).type, tree.node(id).type);
    EXPECT_EQ(restored->node(id).inscost, tree.node(id).inscost);
    EXPECT_EQ(restored->node(id).pathcost, tree.node(id).pathcost);
    EXPECT_EQ(restored->label(id), tree.label(id));
  }
}

TEST(DataTreeTest, DeserializeRejectsCorruption) {
  DataTree tree = BuildCatalog();
  std::string blob;
  tree.Serialize(&blob);
  CostModel model;
  // Truncations at every prefix must fail cleanly, never crash.
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    auto r = DataTree::Deserialize(std::string_view(blob).substr(0, cut),
                                   model);
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
  // Trailing garbage is also rejected.
  auto r = DataTree::Deserialize(blob + "x", model);
  EXPECT_FALSE(r.ok());
}

// Property test: random trees keep the encoding invariants.
class DataTreeRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(DataTreeRandomTest, EncodingInvariants) {
  util::Rng rng(static_cast<uint64_t>(GetParam()));
  DataTreeBuilder builder;
  int depth = 0;
  int opened = 0;
  for (int step = 0; step < 300; ++step) {
    int choice = static_cast<int>(rng.Uniform(4));
    if (choice == 0 && depth > 0) {
      builder.EndElement();
      --depth;
    } else if (choice == 3) {
      builder.AddText("word" + std::to_string(rng.Uniform(20)));
    } else {
      builder.StartElement("e" + std::to_string(rng.Uniform(8)));
      ++depth;
      ++opened;
    }
  }
  while (depth-- > 0) builder.EndElement();
  auto tree = std::move(builder).Build(cost::CostModel());
  ASSERT_TRUE(tree.ok());

  for (NodeId u = 0; u < tree->size(); ++u) {
    const DataNode& n = tree->node(u);
    EXPECT_GE(n.bound, u);
    if (n.parent != kInvalidNode) {
      EXPECT_TRUE(tree->IsAncestor(n.parent, u));
      EXPECT_EQ(n.pathcost,
                tree->node(n.parent).pathcost + tree->node(n.parent).inscost);
    }
    // Children partition (u, bound].
    NodeId cursor = u + 1;
    for (NodeId child = tree->FirstChild(u); child != kInvalidNode;
         child = tree->NextSibling(child)) {
      EXPECT_EQ(child, cursor);
      EXPECT_EQ(tree->node(child).parent, u);
      cursor = tree->node(child).bound + 1;
    }
    EXPECT_EQ(cursor, n.bound + 1);
  }

  // Serialization round-trips structurally.
  std::string blob;
  tree->Serialize(&blob);
  auto restored = DataTree::Deserialize(blob, cost::CostModel());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), tree->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataTreeRandomTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace approxql::doc
