#include "cost/cost_model.h"

#include <gtest/gtest.h>

namespace approxql::cost {
namespace {

TEST(CostArithmeticTest, AddSaturates) {
  EXPECT_EQ(Add(2, 3), 5);
  EXPECT_EQ(Add(kInfinite, 3), kInfinite);
  EXPECT_EQ(Add(3, kInfinite), kInfinite);
  EXPECT_EQ(Add(kInfinite, kInfinite), kInfinite);
  EXPECT_FALSE(IsFinite(Add(kInfinite, 0)));
  EXPECT_TRUE(IsFinite(Add(1, 2)));
}

TEST(CostModelTest, Defaults) {
  CostModel model;
  EXPECT_EQ(model.InsertCost(NodeType::kStruct, "anything"), 1);
  EXPECT_EQ(model.DeleteCost(NodeType::kStruct, "anything"), kInfinite);
  EXPECT_EQ(model.RenameCost(NodeType::kStruct, "a", "b"), kInfinite);
  EXPECT_TRUE(model.RenamingsOf(NodeType::kText, "a").empty());
}

TEST(CostModelTest, IdentityRenameIsFree) {
  CostModel model;
  EXPECT_EQ(model.RenameCost(NodeType::kStruct, "cd", "cd"), 0);
  EXPECT_EQ(model.RenameCost(NodeType::kText, "piano", "piano"), 0);
}

TEST(CostModelTest, PaperSection6Costs) {
  // The cost table from Section 6 of the paper.
  CostModel model;
  model.SetInsertCost(NodeType::kStruct, "category", 4);
  model.SetInsertCost(NodeType::kStruct, "cd", 2);
  model.SetInsertCost(NodeType::kStruct, "composer", 5);
  model.SetInsertCost(NodeType::kStruct, "performer", 5);
  model.SetInsertCost(NodeType::kStruct, "title", 3);
  model.SetDeleteCost(NodeType::kStruct, "composer", 7);
  model.SetDeleteCost(NodeType::kText, "concerto", 6);
  model.SetDeleteCost(NodeType::kText, "piano", 8);
  model.SetDeleteCost(NodeType::kStruct, "title", 5);
  model.SetDeleteCost(NodeType::kStruct, "track", 3);
  model.SetRenameCost(NodeType::kStruct, "cd", "dvd", 6);
  model.SetRenameCost(NodeType::kStruct, "cd", "mc", 4);
  model.SetRenameCost(NodeType::kStruct, "composer", "performer", 4);
  model.SetRenameCost(NodeType::kText, "concerto", "sonata", 3);
  model.SetRenameCost(NodeType::kStruct, "title", "category", 4);

  EXPECT_EQ(model.InsertCost(NodeType::kStruct, "cd"), 2);
  EXPECT_EQ(model.InsertCost(NodeType::kStruct, "tracks"), 1);  // default
  EXPECT_EQ(model.DeleteCost(NodeType::kText, "piano"), 8);
  EXPECT_EQ(model.DeleteCost(NodeType::kText, "rachmaninov"), kInfinite);
  EXPECT_EQ(model.RenameCost(NodeType::kStruct, "cd", "mc"), 4);
  EXPECT_EQ(model.RenameCost(NodeType::kStruct, "mc", "cd"), kInfinite);

  auto renamings = model.RenamingsOf(NodeType::kStruct, "cd");
  ASSERT_EQ(renamings.size(), 2u);
  EXPECT_EQ(renamings[0].to, "dvd");
  EXPECT_EQ(renamings[0].cost, 6);
  EXPECT_EQ(renamings[1].to, "mc");
  EXPECT_EQ(renamings[1].cost, 4);
}

TEST(CostModelTest, StructAndTextSpacesAreSeparate) {
  CostModel model;
  model.SetDeleteCost(NodeType::kStruct, "piano", 2);
  EXPECT_EQ(model.DeleteCost(NodeType::kStruct, "piano"), 2);
  EXPECT_EQ(model.DeleteCost(NodeType::kText, "piano"), kInfinite);
}

TEST(CostModelTest, OverwriteUpdatesRenamingsList) {
  CostModel model;
  model.SetRenameCost(NodeType::kStruct, "a", "b", 5);
  model.SetRenameCost(NodeType::kStruct, "a", "b", 2);
  EXPECT_EQ(model.RenameCost(NodeType::kStruct, "a", "b"), 2);
  auto renamings = model.RenamingsOf(NodeType::kStruct, "a");
  ASSERT_EQ(renamings.size(), 1u);
  EXPECT_EQ(renamings[0].cost, 2);
}

TEST(CostModelTest, InfiniteRenamingExcludedFromList) {
  CostModel model;
  model.SetRenameCost(NodeType::kStruct, "a", "b", 3);
  model.SetRenameCost(NodeType::kStruct, "a", "c", kInfinite);
  auto renamings = model.RenamingsOf(NodeType::kStruct, "a");
  ASSERT_EQ(renamings.size(), 1u);
  EXPECT_EQ(renamings[0].to, "b");
}

TEST(CostModelConfigTest, ParseBasic) {
  auto model = CostModel::ParseConfig(
      "# paper example\n"
      "default-insert 1\n"
      "insert struct cd 2\n"
      "delete struct track 3\n"
      "delete text concerto 6\n"
      "rename struct cd mc 4\n"
      "rename text concerto sonata 3\n"
      "\n");
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->InsertCost(NodeType::kStruct, "cd"), 2);
  EXPECT_EQ(model->DeleteCost(NodeType::kStruct, "track"), 3);
  EXPECT_EQ(model->DeleteCost(NodeType::kText, "concerto"), 6);
  EXPECT_EQ(model->RenameCost(NodeType::kStruct, "cd", "mc"), 4);
  EXPECT_EQ(model->RenameCost(NodeType::kText, "concerto", "sonata"), 3);
}

TEST(CostModelConfigTest, ParseInf) {
  auto model = CostModel::ParseConfig("insert struct rare inf\n");
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->InsertCost(NodeType::kStruct, "rare"), kInfinite);
}

TEST(CostModelConfigTest, TrailingCommentsAndSpaces) {
  auto model = CostModel::ParseConfig("  insert  struct  cd  2  # why\n");
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_EQ(model->InsertCost(NodeType::kStruct, "cd"), 2);
}

TEST(CostModelConfigTest, Errors) {
  EXPECT_FALSE(CostModel::ParseConfig("bogus struct a 1\n").ok());
  EXPECT_FALSE(CostModel::ParseConfig("insert wrongtype a 1\n").ok());
  EXPECT_FALSE(CostModel::ParseConfig("insert struct a notanumber\n").ok());
  EXPECT_FALSE(CostModel::ParseConfig("insert struct a\n").ok());
  EXPECT_FALSE(CostModel::ParseConfig("rename struct a b\n").ok());
  EXPECT_FALSE(CostModel::ParseConfig("insert struct a -1\n").ok());
  auto err = CostModel::ParseConfig("default-insert 1\nbroken\n");
  ASSERT_FALSE(err.ok());
  EXPECT_NE(err.status().message().find("line 2"), std::string::npos);
}

TEST(CostModelConfigTest, RoundTrip) {
  auto model = CostModel::ParseConfig(
      "default-insert 2\n"
      "insert struct cd 2\n"
      "insert text piano 4\n"
      "delete struct track 3\n"
      "rename struct cd mc 4\n"
      "rename struct cd dvd 6\n");
  ASSERT_TRUE(model.ok());
  std::string config = model->ToConfigString();
  auto model2 = CostModel::ParseConfig(config);
  ASSERT_TRUE(model2.ok()) << model2.status() << "\n" << config;
  EXPECT_EQ(model2->ToConfigString(), config);
  EXPECT_EQ(model2->default_insert_cost(), 2);
  EXPECT_EQ(model2->RenameCost(NodeType::kStruct, "cd", "dvd"), 6);
}

}  // namespace
}  // namespace approxql::cost
