#include "baseline/closure_eval.h"

#include <gtest/gtest.h>

#include <string>

namespace approxql::baseline {
namespace {

using cost::CostModel;
using doc::DataTree;
using doc::DataTreeBuilder;

DataTree BuildTree(std::string_view xml, const CostModel& model) {
  DataTreeBuilder builder;
  auto s = builder.AddDocumentXml(xml);
  EXPECT_TRUE(s.ok()) << s;
  auto tree = std::move(builder).Build(model);
  EXPECT_TRUE(tree.ok());
  return std::move(tree).value();
}

query::Query ParseQuery(const char* text) {
  auto q = query::Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return std::move(q).value();
}

TEST(ClosureEvalTest, ExactEmbedding) {
  CostModel model;
  DataTree tree = BuildTree("<a><b>x y</b><c>z</c></a>", model);
  auto q = ParseQuery(R"(a[b["x"]])");
  auto results = ClosureBestN(q, model, tree, SIZE_MAX);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].cost, 0);
}

TEST(ClosureEvalTest, InsertionPricedByPathDistance) {
  CostModel model;
  model.SetInsertCost(NodeType::kStruct, "m", 7);
  DataTree tree = BuildTree("<a><m><b>x</b></m></a>", model);
  auto q = ParseQuery(R"(a[b["x"]])");
  auto results = ClosureBestN(q, model, tree, SIZE_MAX);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].cost, 7);
}

TEST(ClosureEvalTest, VariantCountGrowsWithTransformations) {
  CostModel none;
  auto q = ParseQuery(R"(a[b["x" and "y"]])");
  auto base = ClosureVariantCount(q, none);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(*base, 1u);

  CostModel model;
  model.SetRenameCost(NodeType::kStruct, "b", "c", 1);
  auto with_rename = ClosureVariantCount(q, model);
  ASSERT_TRUE(with_rename.ok());
  EXPECT_EQ(*with_rename, 2u);

  model.SetDeleteCost(NodeType::kStruct, "b", 2);
  auto with_delete = ClosureVariantCount(q, model);
  ASSERT_TRUE(with_delete.ok());
  EXPECT_EQ(*with_delete, 3u);  // b, c, deleted

  model.SetDeleteCost(NodeType::kText, "x", 1);
  auto with_leaf = ClosureVariantCount(q, model);
  ASSERT_TRUE(with_leaf.ok());
  EXPECT_EQ(*with_leaf, 6u);  // {b,c,del} x {x kept, x deleted}
}

TEST(ClosureEvalTest, SeparatedRepresentationMultiplies) {
  CostModel model;
  auto q = ParseQuery(R"(a["x" or "y"])");
  auto count = ClosureVariantCount(q, model);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
}

TEST(ClosureEvalTest, AtLeastOneLeafRule) {
  CostModel model;
  model.SetDeleteCost(NodeType::kText, "q", 1);
  model.SetDeleteCost(NodeType::kText, "p", 1);
  DataTree tree = BuildTree("<a><b>other words</b></a>", model);
  auto q = ParseQuery(R"(a[b["q" and "p"]])");
  auto results = ClosureBestN(q, model, tree, SIZE_MAX);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty()) << "deleting every leaf is not a match";
}

TEST(ClosureEvalTest, RootNotDeletable) {
  CostModel model;
  model.SetDeleteCost(NodeType::kStruct, "a", 1);
  DataTree tree = BuildTree("<z><b>x</b></z>", model);
  auto q = ParseQuery(R"(a[b["x"]])");
  auto results = ClosureBestN(q, model, tree, SIZE_MAX);
  ASSERT_TRUE(results.ok());
  EXPECT_TRUE(results->empty()) << "no 'a' in data and root undeletable";
}

TEST(ClosureEvalTest, NonInjectiveEmbedding) {
  // Both query leaves may map to the same data node's subtree.
  CostModel model;
  DataTree tree = BuildTree("<a><b>x</b></a>", model);
  auto q = ParseQuery(R"(a[b["x"] and b["x"]])");
  auto results = ClosureBestN(q, model, tree, SIZE_MAX);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].cost, 0);
}

TEST(ClosureEvalTest, VariantLimitEnforced) {
  CostModel model;
  for (char c = 'p'; c <= 'z'; ++c) {
    model.SetRenameCost(NodeType::kText, "x", std::string(1, c), 1);
    model.SetRenameCost(NodeType::kText, "y", std::string(1, c), 1);
    model.SetRenameCost(NodeType::kText, "z", std::string(1, c), 1);
  }
  auto q = ParseQuery(R"(a["x" and "y" and "z" and "x" and "y"])");
  ClosureOptions options;
  options.max_variants = 100;
  auto count = ClosureVariantCount(q, model, options);
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), util::StatusCode::kOutOfRange);
}

TEST(ClosureEvalTest, GroupsKeepMinimumCost) {
  // Two embeddings with different costs into the same root: the
  // root-cost pair reports the cheaper one (Definition 11).
  CostModel model;
  model.SetRenameCost(NodeType::kText, "x", "y", 5);
  DataTree tree = BuildTree("<a><b>x</b><b>y</b></a>", model);
  auto q = ParseQuery(R"(a[b["x"]])");
  auto results = ClosureBestN(q, model, tree, SIZE_MAX);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].cost, 0);
}

}  // namespace
}  // namespace approxql::baseline
