#include "baseline/scan_eval.h"

#include <gtest/gtest.h>

#include <string>

#include "baseline/closure_eval.h"
#include "engine/direct_eval.h"

namespace approxql::baseline {
namespace {

using cost::CostModel;
using doc::DataTree;
using doc::DataTreeBuilder;

struct Fixture {
  Fixture(std::string_view xml, CostModel cost_model)
      : model(std::move(cost_model)) {
    DataTreeBuilder builder;
    auto s = builder.AddDocumentXml(xml);
    APPROXQL_CHECK(s.ok()) << s;
    auto built = std::move(builder).Build(model);
    APPROXQL_CHECK(built.ok());
    tree = std::make_unique<DataTree>(std::move(built).value());
    index = std::make_unique<index::LabelIndex>(
        index::LabelIndex::BuildFromTree(*tree));
  }

  std::vector<engine::RootCost> Scan(const std::string& text,
                                     size_t n = SIZE_MAX) {
    auto q = query::Parse(text);
    APPROXQL_CHECK(q.ok());
    auto expanded = query::ExpandedQuery::Build(*q, model);
    APPROXQL_CHECK(expanded.ok());
    engine::EncodedTree view = engine::EncodedTree::Of(*tree);
    ScanEvaluator evaluator(view, tree->labels());
    return evaluator.BestN(*expanded, n);
  }

  std::vector<engine::RootCost> Direct(const std::string& text,
                                       size_t n = SIZE_MAX) {
    auto q = query::Parse(text);
    APPROXQL_CHECK(q.ok());
    auto expanded = query::ExpandedQuery::Build(*q, model);
    APPROXQL_CHECK(expanded.ok());
    engine::DirectEvaluator evaluator(engine::EncodedTree::Of(*tree), *index,
                                      tree->labels());
    return evaluator.BestN(*expanded, n);
  }

  CostModel model;
  std::unique_ptr<DataTree> tree;
  std::unique_ptr<index::LabelIndex> index;
};

CostModel PaperCosts() {
  auto model = CostModel::ParseConfig(
      "insert struct category 4\n"
      "insert struct cd 2\n"
      "insert struct composer 5\n"
      "insert struct title 3\n"
      "delete struct composer 7\n"
      "delete text concerto 6\n"
      "delete text piano 8\n"
      "delete struct title 5\n"
      "delete struct track 3\n"
      "rename struct cd mc 4\n"
      "rename struct composer performer 4\n"
      "rename text concerto sonata 3\n"
      "rename struct title category 4\n");
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

constexpr std::string_view kCatalogXml =
    "<catalog>"
    "<cd><title>piano concerto</title><composer>rachmaninov</composer></cd>"
    "<cd><category>piano concerto</category>"
    "<tracks><track><title>vivace</title></track>"
    "<track><title>allegro piano</title></track></tracks>"
    "<performer>ashkenazy</performer></cd>"
    "<mc><title>piano sonata</title><composer>chopin</composer></mc>"
    "</catalog>";

TEST(ScanEvalTest, MatchesDirectOnPaperCatalog) {
  Fixture fx(kCatalogXml, PaperCosts());
  for (const char* text : {
           R"(cd[title["piano" and "concerto"] and composer["rachmaninov"]])",
           R"(cd[title["piano" and "concerto"]])",
           R"(cd[track[title["vivace"]]])",
           R"(cd[title["piano" and ("concerto" or "sonata")]])",
           R"(cd[composer["rachmaninov"] or performer["ashkenazy"]])",
           R"(cd[title["piano"] and composer])",
           R"(cd[performer])",
           "cd",
           R"(zzz[yyy["x"]])",
       }) {
    EXPECT_EQ(fx.Scan(text), fx.Direct(text)) << text;
  }
}

TEST(ScanEvalTest, MatchesDirectWithDefaultCosts) {
  Fixture fx(kCatalogXml, CostModel());
  for (const char* text : {
           R"(cd[title["piano"]])",
           R"(cd[title["vivace"]])",
           R"(catalog["piano" and "concerto"])",
       }) {
    EXPECT_EQ(fx.Scan(text), fx.Direct(text)) << text;
  }
}

TEST(ScanEvalTest, BestNTruncates) {
  Fixture fx(kCatalogXml, PaperCosts());
  auto all = fx.Scan(R"(cd[title["piano"]])");
  ASSERT_GE(all.size(), 2u);
  auto top1 = fx.Scan(R"(cd[title["piano"]])", 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0], all[0]);
}

TEST(ScanEvalTest, MatchesClosureOracle) {
  Fixture fx(kCatalogXml, PaperCosts());
  auto q = query::Parse(R"(cd[title["piano" and "concerto"]])");
  ASSERT_TRUE(q.ok());
  auto oracle = ClosureBestN(*q, fx.model, *fx.tree, SIZE_MAX);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(fx.Scan(R"(cd[title["piano" and "concerto"]])"), *oracle);
}

}  // namespace
}  // namespace approxql::baseline
