#include "engine/database.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "storage/bptree.h"

namespace approxql::engine {
namespace {

using cost::CostModel;

std::vector<std::string> CatalogDocs() {
  return {
      "<catalog><cd><title>piano concerto</title>"
      "<composer>rachmaninov</composer></cd></catalog>",
      "<catalog><cd><title>goldberg variations</title>"
      "<composer>bach</composer></cd></catalog>",
  };
}

CostModel SomeCosts() {
  CostModel model;
  model.SetRenameCost(NodeType::kText, "concerto", "variations", 3);
  model.SetDeleteCost(NodeType::kText, "piano", 5);
  return model;
}

TEST(DatabaseTest, BuildAndExecuteBothStrategies) {
  auto db = Database::BuildFromXml(CatalogDocs(), SomeCosts());
  ASSERT_TRUE(db.ok()) << db.status();
  for (Strategy strategy :
       {Strategy::kDirect, Strategy::kSchema, Strategy::kFullScan}) {
    ExecOptions options;
    options.strategy = strategy;
    options.n = SIZE_MAX;
    auto answers = db->Execute(R"(cd[title["piano" and "concerto"]])", options);
    ASSERT_TRUE(answers.ok()) << answers.status();
    ASSERT_EQ(answers->size(), 2u) << static_cast<int>(strategy);
    EXPECT_EQ((*answers)[0].cost, 0);
    // Second doc: delete piano (5) + rename concerto->variations (3) = 8.
    EXPECT_EQ((*answers)[1].cost, 8);
  }
}

TEST(DatabaseTest, MaterializeXmlReturnsSubtree) {
  auto db = Database::BuildFromXml(CatalogDocs(), SomeCosts());
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  options.n = 1;
  auto answers = db->Execute(R"(cd[composer["bach"]])", options);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  std::string xml = db->MaterializeXml((*answers)[0].root);
  EXPECT_EQ(xml,
            "<cd><title>goldberg variations</title>"
            "<composer>bach</composer></cd>");
}

TEST(DatabaseTest, ParseErrorsPropagate) {
  auto db = Database::BuildFromXml(CatalogDocs(), CostModel());
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  auto answers = db->Execute("cd[oops", options);
  ASSERT_FALSE(answers.ok());
  EXPECT_TRUE(answers.status().IsParseError());
}

TEST(DatabaseTest, BadXmlRejected) {
  auto db = Database::BuildFromXml({"<a><b></a>"}, CostModel());
  ASSERT_FALSE(db.ok());
  EXPECT_TRUE(db.status().IsParseError());
}

TEST(DatabaseTest, PerQueryCostModelOverride) {
  auto db = Database::BuildFromXml(CatalogDocs(), CostModel());
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  options.n = SIZE_MAX;
  // Without transformations: only the exact match.
  auto strict = db->Execute(R"(cd[title["piano"]])", options);
  ASSERT_TRUE(strict.ok());
  EXPECT_EQ(strict->size(), 1u);
  // Query-specific renaming piano->goldberg widens the result.
  CostModel relaxed;
  relaxed.SetRenameCost(NodeType::kText, "piano", "goldberg", 2);
  options.cost_model = &relaxed;
  auto loose = db->Execute(R"(cd[title["piano"]])", options);
  ASSERT_TRUE(loose.ok());
  ASSERT_EQ(loose->size(), 2u);
  EXPECT_EQ((*loose)[1].cost, 2);
}

TEST(DatabaseTest, BuildFromFiles) {
  auto dir = std::filesystem::temp_directory_path() /
             ("approxql_files_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  auto docs = CatalogDocs();
  std::vector<std::string> paths;
  for (size_t i = 0; i < docs.size(); ++i) {
    auto path = dir / ("doc" + std::to_string(i) + ".xml");
    std::ofstream(path) << docs[i];
    paths.push_back(path.string());
  }
  auto db = Database::BuildFromFiles(paths, CostModel());
  ASSERT_TRUE(db.ok()) << db.status();
  EXPECT_EQ(db->GetStats().struct_nodes, 9u);

  // Missing file: IoError naming the path.
  paths.push_back((dir / "missing.xml").string());
  auto missing = Database::BuildFromFiles(paths, CostModel());
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), util::StatusCode::kIoError);

  // Malformed file: error names the offending path.
  paths.pop_back();
  auto bad_path = dir / "bad.xml";
  std::ofstream(bad_path) << "<a><b></a>";
  paths.push_back(bad_path.string());
  auto bad = Database::BuildFromFiles(paths, CostModel());
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("bad.xml"), std::string::npos);
  std::filesystem::remove_all(dir);
}

TEST(DatabaseTest, PerQueryInsertCostChangeRejected) {
  auto db = Database::BuildFromXml(CatalogDocs(), CostModel());
  ASSERT_TRUE(db.ok());
  CostModel different;
  different.set_default_insert_cost(3);  // disagrees with the build model
  ExecOptions options;
  options.cost_model = &different;
  auto answers = db->Execute(R"(cd[title["piano"]])", options);
  ASSERT_FALSE(answers.ok());
  EXPECT_EQ(answers.status().code(), util::StatusCode::kInvalidArgument);
  auto stream = db->ExecuteStream(R"(cd[title["piano"]])", options);
  EXPECT_FALSE(stream.ok());
  auto explanations = db->Explain(R"(cd[title["piano"]])", options);
  EXPECT_FALSE(explanations.ok());
}

TEST(DatabaseTest, GetStats) {
  auto db = Database::BuildFromXml(CatalogDocs(), CostModel());
  ASSERT_TRUE(db.ok());
  auto stats = db->GetStats();
  EXPECT_EQ(stats.nodes, stats.struct_nodes + stats.text_nodes);
  // 1 super-root + 2*(catalog+cd+title+composer) = 9 struct nodes.
  EXPECT_EQ(stats.struct_nodes, 9u);
  // piano, concerto, rachmaninov + goldberg, variations, bach.
  EXPECT_EQ(stats.text_nodes, 6u);
  EXPECT_GT(stats.schema_nodes, 4u);
}

TEST(DatabaseTest, SaveLoadRoundTrip) {
  std::string path = (std::filesystem::temp_directory_path() /
                      ("approxql_db_" + std::to_string(::getpid())))
                         .string();
  std::filesystem::remove(path);
  {
    auto db = Database::BuildFromXml(CatalogDocs(), SomeCosts());
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE(db->Save(path).ok());
  }
  auto loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  // Rebuild fresh for comparison.
  auto fresh = Database::BuildFromXml(CatalogDocs(), SomeCosts());
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(loaded->tree().size(), fresh->tree().size());
  EXPECT_EQ(loaded->schema().size(), fresh->schema().size());

  // Loaded label index identical to the rebuilt one.
  for (NodeType type : {NodeType::kStruct, NodeType::kText}) {
    ASSERT_EQ(loaded->label_index().postings(type).size(),
              fresh->label_index().postings(type).size());
    for (const auto& [label, posting] : fresh->label_index().postings(type)) {
      const index::Posting* got = loaded->label_index().Fetch(type, label);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, posting);
    }
  }

  // Queries behave identically on the loaded database.
  for (Strategy strategy : {Strategy::kDirect, Strategy::kSchema}) {
    ExecOptions options;
    options.strategy = strategy;
    options.n = SIZE_MAX;
    auto a = loaded->Execute(R"(cd[title["piano" and "concerto"]])", options);
    auto b = fresh->Execute(R"(cd[title["piano" and "concerto"]])", options);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].root, (*b)[i].root);
      EXPECT_EQ((*a)[i].cost, (*b)[i].cost);
    }
  }
  std::filesystem::remove(path);
}

TEST(DatabaseTest, LoadMissingFileFails) {
  auto loaded = Database::Load("/nonexistent/path/db.approxql");
  EXPECT_FALSE(loaded.ok());
}

TEST(DatabaseTest, LoadCorruptStoreFails) {
  std::string path = (std::filesystem::temp_directory_path() /
                      ("approxql_corrupt_" + std::to_string(::getpid())))
                         .string();
  {
    // A valid KV store without the database keys.
    auto store = storage::DiskKvStore::Open(path, true);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("unrelated", "data").ok());
    ASSERT_TRUE((*store)->Flush().ok());
  }
  auto loaded = Database::Load(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace approxql::engine
