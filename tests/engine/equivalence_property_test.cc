// The central correctness property of the reproduction: on random data
// trees, random cost models and random queries, three independent
// implementations of the approximate query-matching semantics agree —
//   1. the brute-force closure oracle (Definitions 7-12, exponential),
//   2. the direct evaluation algorithm `primary` (Section 6),
//   3. the schema-driven incremental algorithm (Section 7).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baseline/closure_eval.h"
#include "baseline/scan_eval.h"
#include "engine/database.h"
#include "query/expanded.h"
#include "util/random.h"

namespace approxql::engine {
namespace {

using cost::CostModel;
using util::Rng;

// Small pools keep label collisions (and thus approximate matches)
// frequent.
const char* const kNames[] = {"a", "b", "c", "d", "e"};
const char* const kWords[] = {"u", "v", "w", "x", "y", "z"};

std::string RandomDocument(Rng& rng) {
  // Random well-formed document over the pools, depth <= 5.
  std::string out;
  int steps = 3 + static_cast<int>(rng.Uniform(40));
  std::vector<const char*> stack;
  out += "<r>";
  stack.push_back("r");
  for (int i = 0; i < steps; ++i) {
    int choice = static_cast<int>(rng.Uniform(4));
    if (choice == 0 && stack.size() > 1) {
      out += std::string("</") + stack.back() + ">";
      stack.pop_back();
    } else if (choice == 1 && stack.size() < 5) {
      const char* name = kNames[rng.Uniform(5)];
      out += std::string("<") + name + ">";
      stack.push_back(name);
    } else {
      out += std::string(kWords[rng.Uniform(6)]) + " ";
    }
  }
  while (!stack.empty()) {
    out += std::string("</") + stack.back() + ">";
    stack.pop_back();
  }
  return out;
}

CostModel RandomCostModel(Rng& rng) {
  CostModel model;
  // Random insert costs for a few labels (encoding-relevant).
  for (const char* name : kNames) {
    if (rng.Bernoulli(0.5)) {
      model.SetInsertCost(NodeType::kStruct, name,
                          rng.UniformInt(1, 5));
    }
  }
  // Random deletions and renamings.
  for (const char* name : kNames) {
    if (rng.Bernoulli(0.4)) {
      model.SetDeleteCost(NodeType::kStruct, name, rng.UniformInt(1, 9));
    }
    if (rng.Bernoulli(0.4)) {
      model.SetRenameCost(NodeType::kStruct, name, kNames[rng.Uniform(5)],
                          rng.UniformInt(1, 9));
    }
  }
  for (const char* word : kWords) {
    if (rng.Bernoulli(0.4)) {
      model.SetDeleteCost(NodeType::kText, word, rng.UniformInt(1, 9));
    }
    if (rng.Bernoulli(0.4)) {
      model.SetRenameCost(NodeType::kText, word, kWords[rng.Uniform(6)],
                          rng.UniformInt(1, 9));
    }
  }
  return model;
}

std::string RandomQueryText(Rng& rng, int budget) {
  // selector := name | name [ expr ]
  std::string name = kNames[rng.Uniform(5)];
  if (budget <= 1 || rng.Bernoulli(0.25)) return name;
  int parts = 1 + static_cast<int>(rng.Uniform(2));
  std::string expr;
  for (int i = 0; i < parts; ++i) {
    if (i > 0) expr += rng.Bernoulli(0.5) ? " and " : " or ";
    if (rng.Bernoulli(0.5)) {
      expr += std::string("\"") + kWords[rng.Uniform(6)] + "\"";
    } else {
      expr += RandomQueryText(rng, budget / 2);
    }
  }
  return name + "[" + expr + "]";
}

class EquivalencePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(EquivalencePropertyTest, OracleDirectSchemaAgree) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 2654435761u + 17);
  // Build a random little collection.
  std::vector<std::string> docs;
  size_t doc_count = 1 + rng.Uniform(3);
  for (size_t i = 0; i < doc_count; ++i) docs.push_back(RandomDocument(rng));
  CostModel model = RandomCostModel(rng);
  auto db = Database::BuildFromXml(docs, model);
  ASSERT_TRUE(db.ok()) << db.status();

  for (int q = 0; q < 6; ++q) {
    std::string text = RandomQueryText(rng, 4);
    auto parsed = query::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;

    auto oracle = baseline::ClosureBestN(*parsed, model, db->tree(),
                                         SIZE_MAX);
    ASSERT_TRUE(oracle.ok()) << text << ": " << oracle.status();

    ExecOptions direct_options;
    direct_options.strategy = Strategy::kDirect;
    direct_options.n = SIZE_MAX;
    auto direct = db->Execute(*parsed, direct_options);
    ASSERT_TRUE(direct.ok()) << text;

    ExecOptions schema_options;
    schema_options.strategy = Strategy::kSchema;
    schema_options.n = SIZE_MAX;
    schema_options.schema.initial_k = 1 + rng.Uniform(4);
    schema_options.schema.delta_k = 1 + rng.Uniform(4);
    auto schema = db->Execute(*parsed, schema_options);
    ASSERT_TRUE(schema.ok()) << text;

    // Fourth witness: the node-at-a-time DP baseline.
    auto expanded = query::ExpandedQuery::Build(*parsed, model);
    ASSERT_TRUE(expanded.ok());
    EncodedTree view = EncodedTree::Of(db->tree());
    baseline::ScanEvaluator scan_eval(view, db->tree().labels());
    auto scan = scan_eval.BestN(*expanded, SIZE_MAX);

    ASSERT_EQ(direct->size(), oracle->size()) << text;
    ASSERT_EQ(schema->size(), oracle->size()) << text;
    ASSERT_EQ(scan.size(), oracle->size()) << text;
    for (size_t i = 0; i < oracle->size(); ++i) {
      EXPECT_EQ((*direct)[i].root, (*oracle)[i].root) << text << " i=" << i;
      EXPECT_EQ((*direct)[i].cost, (*oracle)[i].cost) << text << " i=" << i;
      EXPECT_EQ((*schema)[i].root, (*oracle)[i].root) << text << " i=" << i;
      EXPECT_EQ((*schema)[i].cost, (*oracle)[i].cost) << text << " i=" << i;
      EXPECT_EQ(scan[i].root, (*oracle)[i].root) << text << " i=" << i;
      EXPECT_EQ(scan[i].cost, (*oracle)[i].cost) << text << " i=" << i;
    }

    // Best-n prefixes agree on costs for every n.
    for (size_t n = 1; n <= oracle->size(); ++n) {
      ExecOptions topn = schema_options;
      topn.n = n;
      auto top = db->Execute(*parsed, topn);
      ASSERT_TRUE(top.ok());
      ASSERT_EQ(top->size(), n) << text;
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ((*top)[i].cost, (*oracle)[i].cost) << text << " n=" << n;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalencePropertyTest,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace approxql::engine
