// Tests for the incremental retrieval stream (paper conclusion) and the
// EXPLAIN facility over second-level queries.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"

namespace approxql::engine {
namespace {

using cost::CostModel;

std::vector<std::string> CatalogDocs() {
  return {
      "<catalog><cd><title>piano concerto</title>"
      "<composer>rachmaninov</composer></cd></catalog>",
      "<catalog><cd><tracks><track><title>piano concerto</title></track>"
      "</tracks><composer>rachmaninov</composer></cd></catalog>",
      "<catalog><mc><title>piano concerto</title>"
      "<composer>rachmaninov</composer></mc></catalog>",
      "<catalog><cd><title>piano etudes</title>"
      "<composer>rachmaninov</composer></cd></catalog>",
  };
}

CostModel SomeCosts() {
  auto model = CostModel::ParseConfig(
      "rename struct cd mc 4\n"
      "delete text concerto 6\n"
      "delete struct track 3\n");
  APPROXQL_CHECK(model.ok());
  return std::move(model).value();
}

TEST(AnswerStreamTest, StreamsAllResultsInCostOrder) {
  auto db = Database::BuildFromXml(CatalogDocs(), SomeCosts());
  ASSERT_TRUE(db.ok()) << db.status();
  ExecOptions options;
  options.n = SIZE_MAX;
  auto batch = db->Execute(R"(cd[title["piano" and "concerto"]])", options);
  ASSERT_TRUE(batch.ok());

  auto stream =
      db->ExecuteStream(R"(cd[title["piano" and "concerto"]])", options);
  ASSERT_TRUE(stream.ok()) << stream.status();
  std::vector<QueryAnswer> streamed;
  cost::Cost last = 0;
  while (auto answer = stream->Next()) {
    EXPECT_GE(answer->cost, last) << "stream must be cost-ordered";
    last = answer->cost;
    streamed.push_back(*answer);
  }
  ASSERT_EQ(streamed.size(), batch->size());
  // Same multiset of (root, cost) as the batch API.
  auto key = [](const QueryAnswer& a) {
    return std::pair<doc::NodeId, cost::Cost>(a.root, a.cost);
  };
  std::vector<std::pair<doc::NodeId, cost::Cost>> a_keys, b_keys;
  for (const auto& answer : streamed) a_keys.push_back(key(answer));
  for (const auto& answer : *batch) b_keys.push_back(key(answer));
  std::sort(a_keys.begin(), a_keys.end());
  std::sort(b_keys.begin(), b_keys.end());
  EXPECT_EQ(a_keys, b_keys);
  // Exhausted stream stays exhausted.
  EXPECT_FALSE(stream->Next().has_value());
  EXPECT_FALSE(stream->truncated_by_k_cap());
}

TEST(AnswerStreamTest, FirstResultAvailableImmediately) {
  auto db = Database::BuildFromXml(CatalogDocs(), SomeCosts());
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  auto stream =
      db->ExecuteStream(R"(cd[title["piano" and "concerto"]])", options);
  ASSERT_TRUE(stream.ok());
  auto first = stream->Next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->cost, 0);
  std::string xml = db->MaterializeXml(first->root);
  EXPECT_NE(xml.find("piano concerto"), std::string::npos);
}

TEST(AnswerStreamTest, EmptyResult) {
  auto db = Database::BuildFromXml(CatalogDocs(), SomeCosts());
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  auto stream = db->ExecuteStream(R"(zzz[yyy["xxx"]])", options);
  ASSERT_TRUE(stream.ok());
  EXPECT_FALSE(stream->Next().has_value());
}

TEST(AnswerStreamTest, ParseErrorPropagates) {
  auto db = Database::BuildFromXml(CatalogDocs(), SomeCosts());
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  auto stream = db->ExecuteStream("cd[broken", options);
  EXPECT_FALSE(stream.ok());
}

TEST(ExplainTest, RanksSecondLevelQueries) {
  auto db = Database::BuildFromXml(CatalogDocs(), SomeCosts());
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  options.n = 10;
  auto explanations =
      db->Explain(R"(cd[title["piano" and "concerto"]])", options);
  ASSERT_TRUE(explanations.ok()) << explanations.status();
  ASSERT_GE(explanations->size(), 3u);
  // Cheapest second-level query: the exact match, rooted at the cd
  // class, one result.
  EXPECT_EQ((*explanations)[0].cost, 0);
  EXPECT_NE((*explanations)[0].skeleton.find("cd@"), std::string::npos);
  EXPECT_NE((*explanations)[0].skeleton.find("/catalog/cd"),
            std::string::npos);
  EXPECT_NE((*explanations)[0].skeleton.find("piano"), std::string::npos);
  EXPECT_EQ((*explanations)[0].result_count, 1u);
  // Costs ascend.
  for (size_t i = 1; i < explanations->size(); ++i) {
    EXPECT_GE((*explanations)[i].cost, (*explanations)[i - 1].cost);
  }
  // Some second-level query describes the mc rename.
  bool saw_mc = false;
  for (const auto& explanation : *explanations) {
    if (explanation.skeleton.find("mc@") != std::string::npos) saw_mc = true;
  }
  EXPECT_TRUE(saw_mc);
}

TEST(ExplainTest, SkeletonShowsDeletedLeafAsAbsent) {
  auto db = Database::BuildFromXml(CatalogDocs(), SomeCosts());
  ASSERT_TRUE(db.ok());
  ExecOptions options;
  options.n = 32;
  auto explanations =
      db->Explain(R"(cd[title["piano" and "concerto"]])", options);
  ASSERT_TRUE(explanations.ok());
  // The "concerto deleted" variant (cost 6) mentions piano but not
  // concerto.
  bool found = false;
  for (const auto& explanation : *explanations) {
    if (explanation.cost == 6 &&
        explanation.skeleton.find("concerto") == std::string::npos &&
        explanation.skeleton.find("piano") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace approxql::engine
