#include "engine/list_ops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "util/random.h"

namespace approxql::engine {
namespace {

using cost::kInfinite;

/// Builds an encoded forest of chains: each of `groups` groups has
/// `depth` nested struct nodes with inscost 1.
struct ChainTree {
  explicit ChainTree(size_t groups, uint32_t depth = 3) {
    nodes.resize(groups * depth);
    for (size_t g = 0; g < groups; ++g) {
      doc::NodeId base = static_cast<doc::NodeId>(g * depth);
      for (uint32_t i = 0; i < depth; ++i) {
        doc::DataNode& n = nodes[base + i];
        n.parent = i == 0 ? doc::kInvalidNode : base + i - 1;
        n.bound = base + depth - 1;
        n.inscost = 1;
        n.pathcost = i;
      }
    }
  }
  EncodedTree View() const { return {nodes.data(), nodes.size()}; }

  Entry At(doc::NodeId id, cost::Cost cost_any = 0,
           cost::Cost cost_leaf = kInfinite) const {
    Entry e;
    e.pre = id;
    e.bound = nodes[id].bound;
    e.pathcost = nodes[id].pathcost;
    e.inscost = nodes[id].inscost;
    e.cost_any = cost_any;
    e.cost_leaf = cost_leaf;
    return e;
  }

  std::vector<doc::DataNode> nodes;
};

TEST(FetchTest, InitializesFromPosting) {
  ChainTree tree(2);
  index::Posting posting = {0, 3};
  EntryList leaf_list = Fetch(tree.View(), &posting, /*as_leaf=*/true);
  ASSERT_EQ(leaf_list.size(), 2u);
  EXPECT_EQ(leaf_list[0].pre, 0u);
  EXPECT_EQ(leaf_list[0].bound, 2u);
  EXPECT_EQ(leaf_list[0].cost_any, 0);
  EXPECT_EQ(leaf_list[0].cost_leaf, 0);
  EntryList node_list = Fetch(tree.View(), &posting, /*as_leaf=*/false);
  EXPECT_EQ(node_list[0].cost_leaf, kInfinite);
  EXPECT_TRUE(Fetch(tree.View(), nullptr, true).empty());
}

TEST(MergeTest, InterleavesAndCharges) {
  ChainTree tree(3);
  EntryList left = {tree.At(0, 1, 1)};
  EntryList right = {tree.At(3, 2, 2), tree.At(6, 0, kInfinite)};
  EntryList merged = Merge(left, right, 5);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].pre, 0u);
  EXPECT_EQ(merged[0].cost_any, 1);  // left side uncharged
  EXPECT_EQ(merged[1].pre, 3u);
  EXPECT_EQ(merged[1].cost_any, 7);  // 2 + rename 5
  EXPECT_EQ(merged[1].cost_leaf, 7);
  EXPECT_EQ(merged[2].cost_any, 5);
  EXPECT_EQ(merged[2].cost_leaf, kInfinite);  // inf stays inf
}

TEST(MergeTest, CollisionKeepsMinima) {
  ChainTree tree(1);
  EntryList left = {tree.At(0, 4, kInfinite)};
  EntryList right = {tree.At(0, 1, 1)};
  EntryList merged = Merge(left, right, 2);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].cost_any, 3);   // min(4, 1+2)
  EXPECT_EQ(merged[0].cost_leaf, 3);  // min(inf, 1+2)
}

TEST(JoinTest, PicksCheapestDescendantAndAddsDistance) {
  ChainTree tree(2);
  // Group 0: nodes 0,1,2 nested. Ancestor 0; descendants 1 (dist 0) and
  // 2 (dist 1: node 1's inscost).
  EntryList ancestors = {tree.At(0)};
  EntryList descendants = {tree.At(1, 7, 7), tree.At(2, 3, kInfinite)};
  EntryList joined = Join(ancestors, descendants, 2);
  ASSERT_EQ(joined.size(), 1u);
  // any: min(0+7, 1+3) + 2 = 6; leaf: min(0+7, inf) + 2 = 9.
  EXPECT_EQ(joined[0].cost_any, 6);
  EXPECT_EQ(joined[0].cost_leaf, 9);
}

TEST(JoinTest, DropsAncestorsWithoutDescendants) {
  ChainTree tree(2);
  EntryList ancestors = {tree.At(0), tree.At(3)};
  EntryList descendants = {tree.At(4, 0, 0)};  // inside group 1 only
  EntryList joined = Join(ancestors, descendants, 0);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].pre, 3u);
}

TEST(JoinTest, SelfIsNotDescendant) {
  ChainTree tree(1);
  EntryList ancestors = {tree.At(1)};
  EntryList descendants = {tree.At(1, 0, 0)};
  EXPECT_TRUE(Join(ancestors, descendants, 0).empty());
}

TEST(JoinTest, NestedAncestorsBothSeeDeepDescendant) {
  ChainTree tree(1, /*depth=*/4);
  EntryList ancestors = {tree.At(0), tree.At(1)};
  EntryList descendants = {tree.At(3, 0, 0)};
  EntryList joined = Join(ancestors, descendants, 0);
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined[0].pre, 0u);
  EXPECT_EQ(joined[0].cost_any, 2);  // nodes 1 and 2 inserted
  EXPECT_EQ(joined[1].pre, 1u);
  EXPECT_EQ(joined[1].cost_any, 1);  // node 2 inserted
}

TEST(OuterJoinTest, DeletionOptionAndLeafRule) {
  ChainTree tree(2);
  EntryList ancestors = {tree.At(0), tree.At(3)};
  EntryList descendants = {tree.At(1, 0, 0)};  // only under ancestor 0
  EntryList joined = OuterJoin(ancestors, descendants, 1, /*delete_cost=*/4);
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined[0].cost_any, 1);  // match (0) + edge 1
  EXPECT_EQ(joined[0].cost_leaf, 1);
  EXPECT_EQ(joined[1].cost_any, 5);        // delete 4 + edge 1
  EXPECT_EQ(joined[1].cost_leaf, kInfinite);  // deletion matches no leaf
}

TEST(OuterJoinTest, InfiniteDeleteDropsUnmatchedAncestors) {
  ChainTree tree(2);
  EntryList ancestors = {tree.At(0), tree.At(3)};
  EntryList descendants = {tree.At(1, 0, 0)};
  EntryList joined = OuterJoin(ancestors, descendants, 0, kInfinite);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].pre, 0u);
}

TEST(OuterJoinTest, DeletionCheaperThanBadMatch) {
  ChainTree tree(1, 4);
  EntryList ancestors = {tree.At(0)};
  EntryList descendants = {tree.At(3, 10, 10)};  // match costs 2+10
  EntryList joined = OuterJoin(ancestors, descendants, 0, /*delete_cost=*/3);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].cost_any, 3);    // deletion wins
  EXPECT_EQ(joined[0].cost_leaf, 12);  // but the leaf-carrying cost is real
}

TEST(IntersectTest, AddsCostsOnCommonNodes) {
  ChainTree tree(3);
  EntryList left = {tree.At(0, 1, 2), tree.At(3, 1, 1)};
  EntryList right = {tree.At(3, 2, kInfinite), tree.At(6, 0, 0)};
  EntryList both = Intersect(left, right, 1);
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].pre, 3u);
  EXPECT_EQ(both[0].cost_any, 4);  // 1 + 2 + 1
  // leaf: min(1+2, 1+inf) + 1 = 4.
  EXPECT_EQ(both[0].cost_leaf, 4);
}

TEST(IntersectTest, LeafRuleNeedsOneSideOnly) {
  ChainTree tree(1);
  EntryList left = {tree.At(0, 2, kInfinite)};
  EntryList right = {tree.At(0, 3, 5)};
  EntryList both = Intersect(left, right, 0);
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0].cost_any, 5);
  EXPECT_EQ(both[0].cost_leaf, 7);  // 2 + 5
}

TEST(UnionTest, MinimaOnCommonCopyOnSingle) {
  ChainTree tree(3);
  EntryList left = {tree.At(0, 1, 1), tree.At(3, 5, kInfinite)};
  EntryList right = {tree.At(3, 2, 2), tree.At(6, 4, 4)};
  EntryList either = Union(left, right, 1);
  ASSERT_EQ(either.size(), 3u);
  EXPECT_EQ(either[0].cost_any, 2);
  EXPECT_EQ(either[1].pre, 3u);
  EXPECT_EQ(either[1].cost_any, 3);   // min(5,2)+1
  EXPECT_EQ(either[1].cost_leaf, 3);  // min(inf,2)+1
  EXPECT_EQ(either[2].cost_any, 5);
}

TEST(SortBestNTest, SortsFiltersTruncates) {
  ChainTree tree(4);
  EntryList list = {tree.At(0, 0, 5), tree.At(3, 0, 2),
                    tree.At(6, 0, kInfinite), tree.At(9, 0, 2)};
  auto top = SortBestN(list, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].root, 3u);  // cost 2, smaller pre first
  EXPECT_EQ(top[1].root, 9u);
  auto all = SortBestN(list, SIZE_MAX);
  ASSERT_EQ(all.size(), 3u);  // infinite cost_leaf filtered
  EXPECT_EQ(all[2].cost, 5);
}

TEST(SortTopNTest, MatchesFullSortForEveryN) {
  util::Rng rng(20020314);
  for (int round = 0; round < 20; ++round) {
    std::vector<RootCost> list;
    size_t size = rng.Uniform(40);
    for (size_t i = 0; i < size; ++i) {
      // Few distinct costs and roots force tie-breaking through both
      // comparator components.
      list.push_back({static_cast<doc::NodeId>(rng.Uniform(20)),
                      static_cast<cost::Cost>(rng.Uniform(5))});
    }
    std::vector<RootCost> reference = list;
    std::sort(reference.begin(), reference.end(),
              [](const RootCost& a, const RootCost& b) {
                return a.cost != b.cost ? a.cost < b.cost : a.root < b.root;
              });
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size, SIZE_MAX}) {
      std::vector<RootCost> partial = list;
      SortTopN(&partial, n);
      std::vector<RootCost> expected = reference;
      if (expected.size() > n) expected.resize(n);
      EXPECT_EQ(partial, expected) << "size=" << size << " n=" << n;
    }
  }
}

TEST(MergeTopNTest, DedupKeepsMinimumCost) {
  // Root 5 appears in both lists; the cheaper occurrence must win.
  std::vector<std::vector<RootCost>> lists = {
      {{5, 1}, {7, 4}},
      {{3, 2}, {5, 3}},
  };
  auto merged = MergeTopN(lists, SIZE_MAX);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], (RootCost{5, 1}));
  EXPECT_EQ(merged[1], (RootCost{3, 2}));
  EXPECT_EQ(merged[2], (RootCost{7, 4}));
}

TEST(MergeTopNTest, TruncatesToNAndHandlesEmpty) {
  std::vector<std::vector<RootCost>> lists = {
      {{1, 1}, {2, 2}, {3, 3}},
      {},
      {{4, 1}, {5, 5}},
  };
  auto merged = MergeTopN(lists, 2);
  ASSERT_EQ(merged.size(), 2u);
  // Equal costs tie-break by root.
  EXPECT_EQ(merged[0], (RootCost{1, 1}));
  EXPECT_EQ(merged[1], (RootCost{4, 1}));
  EXPECT_TRUE(MergeTopN({}, 10).empty());
  EXPECT_TRUE(MergeTopN({{}, {}}, 10).empty());
  EXPECT_TRUE(MergeTopN(lists, 0).empty());
}

TEST(MergeTopNTest, DuplicateCostRootPairAcrossLists) {
  // The sharded scatter can (in principle) present the exact same
  // (cost, root) pair in several input lists; the merge must emit it
  // once — heap pops of equal keys are adjacent, so the first pop wins
  // and the rest are skipped as duplicate roots.
  std::vector<std::vector<RootCost>> lists = {
      {{9, 2}, {4, 7}},
      {{9, 2}},
      {{9, 2}, {1, 5}},
  };
  auto merged = MergeTopN(lists, SIZE_MAX);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], (RootCost{9, 2}));
  EXPECT_EQ(merged[1], (RootCost{1, 5}));
  EXPECT_EQ(merged[2], (RootCost{4, 7}));

  // k = 0 with duplicates present still yields nothing.
  EXPECT_TRUE(MergeTopN(lists, 0).empty());
}

TEST(MergeTopNTest, NLargerThanUnionReturnsWholeUnion) {
  // A finite n beyond the deduplicated union must not pad, repeat, or
  // drop entries — it returns exactly the union, still ranked.
  std::vector<std::vector<RootCost>> lists = {
      {{2, 1}, {6, 3}},
      {{2, 4}, {8, 3}},
  };
  auto merged = MergeTopN(lists, 100);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0], (RootCost{2, 1}));
  // Equal costs tie-break by root: (6,3) before (8,3).
  EXPECT_EQ(merged[1], (RootCost{6, 3}));
  EXPECT_EQ(merged[2], (RootCost{8, 3}));
}

TEST(MergeTopNTest, MatchesConcatenateSortDedup) {
  util::Rng rng(7001);
  for (int round = 0; round < 20; ++round) {
    size_t k = 1 + rng.Uniform(5);
    std::vector<std::vector<RootCost>> lists(k);
    for (auto& list : lists) {
      // Unique roots per list, sorted by (cost, root) — the contract the
      // per-disjunct evaluators guarantee.
      size_t size = rng.Uniform(15);
      std::vector<doc::NodeId> roots;
      for (size_t i = 0; i < size; ++i) {
        roots.push_back(static_cast<doc::NodeId>(rng.Uniform(30)));
      }
      std::sort(roots.begin(), roots.end());
      roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
      for (doc::NodeId root : roots) {
        list.push_back({root, static_cast<cost::Cost>(rng.Uniform(8))});
      }
      std::sort(list.begin(), list.end(),
                [](const RootCost& a, const RootCost& b) {
                  return a.cost != b.cost ? a.cost < b.cost : a.root < b.root;
                });
    }
    // Oracle: concatenate, keep the min cost per root, sort, truncate.
    std::map<doc::NodeId, cost::Cost> best;
    for (const auto& list : lists) {
      for (const RootCost& rc : list) {
        auto [it, inserted] = best.emplace(rc.root, rc.cost);
        if (!inserted && rc.cost < it->second) it->second = rc.cost;
      }
    }
    std::vector<RootCost> expected;
    for (const auto& [root, costv] : best) expected.push_back({root, costv});
    std::sort(expected.begin(), expected.end(),
              [](const RootCost& a, const RootCost& b) {
                return a.cost != b.cost ? a.cost < b.cost : a.root < b.root;
              });
    size_t n = rng.Uniform(10);
    if (expected.size() > n) expected.resize(n);
    EXPECT_EQ(MergeTopN(lists, n), expected) << "round " << round;
  }
}

// Algebraic properties on random lists.
class ListOpsPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  EntryList RandomList(const ChainTree& tree, util::Rng& rng) {
    EntryList list;
    for (doc::NodeId id = 0; id < tree.nodes.size(); ++id) {
      if (rng.Bernoulli(0.5)) {
        cost::Cost any = static_cast<cost::Cost>(rng.Uniform(10));
        cost::Cost leaf =
            rng.Bernoulli(0.3) ? kInfinite
                               : any + static_cast<cost::Cost>(rng.Uniform(5));
        list.push_back(tree.At(id, any, leaf));
      }
    }
    return list;
  }
};

TEST_P(ListOpsPropertyTest, IntersectAndUnionAreCommutative) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 31 + 1);
  ChainTree tree(10, 4);
  EntryList a = RandomList(tree, rng);
  EntryList b = RandomList(tree, rng);
  auto eq = [](const EntryList& x, const EntryList& y) {
    if (x.size() != y.size()) return false;
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i].pre != y[i].pre || x[i].cost_any != y[i].cost_any ||
          x[i].cost_leaf != y[i].cost_leaf) {
        return false;
      }
    }
    return true;
  };
  EXPECT_TRUE(eq(Intersect(a, b, 3), Intersect(b, a, 3)));
  EXPECT_TRUE(eq(Union(a, b, 3), Union(b, a, 3)));
}

TEST_P(ListOpsPropertyTest, UnionWithSelfAddsEdgeOnly) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 37 + 5);
  ChainTree tree(10, 4);
  EntryList a = RandomList(tree, rng);
  EntryList u = Union(a, a, 2);
  ASSERT_EQ(u.size(), a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(u[i].cost_any, cost::Add(a[i].cost_any, 2));
    EXPECT_EQ(u[i].cost_leaf, cost::Add(a[i].cost_leaf, 2));
  }
}

TEST_P(ListOpsPropertyTest, OutputsSortedUniquePre) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 41 + 3);
  ChainTree tree(10, 4);
  EntryList a = RandomList(tree, rng);
  EntryList b = RandomList(tree, rng);
  for (const EntryList& out :
       {Merge(a, b, 1), Join(a, b, 1), OuterJoin(a, b, 1, 2),
        Intersect(a, b, 1), Union(a, b, 1)}) {
    for (size_t i = 1; i < out.size(); ++i) {
      EXPECT_LT(out[i - 1].pre, out[i].pre);
    }
    for (const Entry& e : out) {
      EXPECT_LE(e.cost_any, e.cost_leaf)
          << "the leaf-constrained cost can never beat the free one";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ListOpsPropertyTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace approxql::engine
