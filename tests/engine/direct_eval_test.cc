#include "engine/direct_eval.h"

#include <gtest/gtest.h>

#include <string>

#include "baseline/closure_eval.h"
#include "query/ast.h"

namespace approxql::engine {
namespace {

using cost::CostModel;
using cost::kInfinite;
using doc::DataTree;
using doc::DataTreeBuilder;

// The Figure 1(b)-style data: two CDs, one with track titles.
constexpr std::string_view kCatalogXml =
    "<catalog>"
    "<cd><title>piano concerto</title><composer>rachmaninov</composer></cd>"
    "<cd><category>piano concerto</category>"
    "<tracks><track><title>vivace</title></track>"
    "<track><title>allegro piano</title></track></tracks>"
    "<performer>ashkenazy</performer></cd>"
    "<mc><title>piano sonata</title><composer>chopin</composer></mc>"
    "</catalog>";

CostModel PaperCosts() {
  auto model = CostModel::ParseConfig(
      "insert struct category 4\n"
      "insert struct cd 2\n"
      "insert struct composer 5\n"
      "insert struct performer 5\n"
      "insert struct title 3\n"
      "delete struct composer 7\n"
      "delete text concerto 6\n"
      "delete text piano 8\n"
      "delete struct title 5\n"
      "delete struct track 3\n"
      "rename struct cd dvd 6\n"
      "rename struct cd mc 4\n"
      "rename struct composer performer 4\n"
      "rename text concerto sonata 3\n"
      "rename struct title category 4\n");
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

struct Fixture {
  explicit Fixture(std::string_view xml, CostModel cost_model = CostModel())
      : model(std::move(cost_model)) {
    DataTreeBuilder builder;
    auto s = builder.AddDocumentXml(xml);
    APPROXQL_CHECK(s.ok()) << s;
    auto built = std::move(builder).Build(model);
    APPROXQL_CHECK(built.ok());
    tree = std::make_unique<DataTree>(std::move(built).value());
    index = std::make_unique<index::LabelIndex>(
        index::LabelIndex::BuildFromTree(*tree));
  }

  std::vector<RootCost> Run(const std::string& text, size_t n = SIZE_MAX,
                            DirectEvaluator::Options options = {},
                            EvalStats* stats = nullptr) {
    auto q = query::Parse(text);
    APPROXQL_CHECK(q.ok()) << q.status();
    auto expanded = query::ExpandedQuery::Build(*q, model);
    APPROXQL_CHECK(expanded.ok());
    DirectEvaluator evaluator(EncodedTree::Of(*tree), *index, tree->labels(),
                              options);
    auto results = evaluator.BestN(*expanded, n);
    if (stats != nullptr) *stats = evaluator.stats();
    return results;
  }

  std::vector<RootCost> Oracle(const std::string& text, size_t n = SIZE_MAX) {
    auto q = query::Parse(text);
    APPROXQL_CHECK(q.ok());
    auto results = baseline::ClosureBestN(*q, model, *tree, n);
    APPROXQL_CHECK(results.ok()) << results.status();
    return std::move(results).value();
  }

  /// First node (in preorder) whose label path from the super-root is
  /// exactly `path`; searches all branches.
  doc::NodeId Locate(const std::vector<std::string_view>& path) {
    doc::NodeId found = LocateFrom(tree->root(), path, 0);
    APPROXQL_CHECK(found != doc::kInvalidNode) << "path not found";
    return found;
  }

  doc::NodeId LocateFrom(doc::NodeId at,
                         const std::vector<std::string_view>& path,
                         size_t depth) {
    if (depth == path.size()) return at;
    for (doc::NodeId child = tree->FirstChild(at); child != doc::kInvalidNode;
         child = tree->NextSibling(child)) {
      if (tree->label(child) != path[depth]) continue;
      doc::NodeId found = LocateFrom(child, path, depth + 1);
      if (found != doc::kInvalidNode) return found;
    }
    return doc::kInvalidNode;
  }

  CostModel model;
  std::unique_ptr<DataTree> tree;
  std::unique_ptr<index::LabelIndex> index;
};

doc::NodeId tree_parent(const Fixture& fx, doc::NodeId id) {
  return fx.tree->node(id).parent;
}

TEST(DirectEvalTest, ExactMatchCostsZero) {
  Fixture fx(kCatalogXml);
  auto results = fx.Run(R"(cd[title["piano" and "concerto"]])");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].cost, 0);
  EXPECT_EQ(results[0].root, fx.Locate({"catalog", "cd"}));
}

TEST(DirectEvalTest, NoTransformationsNoApproximateResults) {
  Fixture fx(kCatalogXml);  // default cost model: no deletes/renames
  // Only the first cd has composer rachmaninov AND title piano.
  auto results = fx.Run(R"(cd[title["piano"] and composer["rachmaninov"]])");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].cost, 0);
  // No cd has title "vivace" (it is a track title); without insertions
  // being free... insertions ARE always allowed: the track/title chain
  // costs the inserted nodes. With the default model (insert cost 1 each)
  // the second cd matches via two insertions.
  auto approx = fx.Run(R"(cd[title["vivace"]])");
  ASSERT_EQ(approx.size(), 1u);
  EXPECT_EQ(approx[0].cost, 2);  // insert tracks + track, 1 each
  // The embedding root is the cd containing the tracks subtree.
  EXPECT_EQ(approx[0].root,
            tree_parent(fx, fx.Locate({"catalog", "cd", "tracks"})));
}

TEST(DirectEvalTest, InsertionCostsComeFromTheCostModel) {
  CostModel model;
  model.SetInsertCost(NodeType::kStruct, "tracks", 4);
  model.SetInsertCost(NodeType::kStruct, "track", 3);
  Fixture fx(kCatalogXml, std::move(model));
  auto results = fx.Run(R"(cd[title["vivace"]])");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].cost, 7);
}

TEST(DirectEvalTest, RootRenamingShiftsSearchSpace) {
  Fixture fx(kCatalogXml, PaperCosts());
  // "piano sonata" appears under mc/title; cd->mc rename costs 4.
  // (Renamings apply to query labels: "sonata" has no renamings, so the
  // cd titles cannot satisfy this query.)
  auto results = fx.Run(R"(cd[title["piano" and "sonata"]])");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].cost, 4);
  EXPECT_EQ(results[0].root, fx.Locate({"catalog", "mc"}));
}

TEST(DirectEvalTest, LeafRenamingRanksWorse) {
  Fixture fx(kCatalogXml, PaperCosts());
  // Query "concerto" may be renamed to "sonata" (cost 3): the mc's
  // "piano sonata" matches at 3 (rename) + 4 (root rename) = 7.
  auto results = fx.Run(R"(cd[title["concerto"]])");
  ASSERT_GE(results.size(), 2u);
  EXPECT_EQ(results[0].cost, 0);  // cd1 exact
  EXPECT_EQ(results[0].root, fx.Locate({"catalog", "cd"}));
}

TEST(DirectEvalTest, LeafDeletionUsesCoordinationLevelMatch) {
  Fixture fx(kCatalogXml, PaperCosts());
  // Second cd's category has words piano+concerto; title->category rename
  // is 4. First cd matches exactly. mc needs root rename 4 + nothing else.
  auto results = fx.Run(R"(cd[title["piano" and "concerto"]])");
  ASSERT_GE(results.size(), 3u);
  EXPECT_EQ(results[0].cost, 0);
  // mc[title[piano sonata]]: rename cd->mc (4) + delete concerto (6) = 10
  // or rename concerto->sonata (3) + cd->mc (4) = 7.
  RootCost mc_result{0, 0};
  for (const auto& r : results) {
    if (r.root == fx.Locate({"catalog", "mc"})) mc_result = r;
  }
  EXPECT_EQ(mc_result.cost, 7);
}

TEST(DirectEvalTest, InnerNodeDeletionFindsTrackTitles) {
  // Query asks for cd titles; deleting nothing, the track titles also
  // match via inserted tracks/track nodes.
  Fixture fx(kCatalogXml, PaperCosts());
  auto results = fx.Run(R"(cd[title["vivace"]])");
  ASSERT_EQ(results.size(), 1u);
  // Insert tracks (1, default) + track (paper table has no track insert
  // cost? it does: not listed -> default 1)... both default 1 -> cost 2.
  EXPECT_EQ(results[0].cost, 2);
}

TEST(DirectEvalTest, StructLeafQuery) {
  Fixture fx(kCatalogXml);
  auto results = fx.Run(R"(cd[performer])");
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].cost, 0);
  EXPECT_EQ(results[0].root,
            tree_parent(fx, fx.Locate({"catalog", "cd", "performer"})));
}

TEST(DirectEvalTest, BareRootQuery) {
  Fixture fx(kCatalogXml);
  auto results = fx.Run("cd");
  EXPECT_EQ(results.size(), 2u);
  for (const auto& r : results) EXPECT_EQ(r.cost, 0);
}

TEST(DirectEvalTest, OrPicksCheaperBranch) {
  Fixture fx(kCatalogXml, PaperCosts());
  auto results =
      fx.Run(R"(cd[composer["rachmaninov"] or performer["ashkenazy"]])");
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].cost, 0);
  EXPECT_EQ(results[1].cost, 0);
}

TEST(DirectEvalTest, AndRequiresBothUnderSameRoot) {
  Fixture fx(kCatalogXml);
  auto results =
      fx.Run(R"(cd[title["piano"] and performer["ashkenazy"]])");
  // cd1 has title piano but no performer. cd2 has the performer and a
  // track title containing "piano" reachable by two insertions — the
  // only root matching both conjuncts.
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].cost, 2);
  EXPECT_EQ(results[0].root,
            tree_parent(fx, fx.Locate({"catalog", "cd", "performer"})));

  // Under the same root: a query whose conjuncts live in different cds
  // has no result.
  auto cross = fx.Run(R"(cd[composer["rachmaninov"] and )"
                      R"(performer["ashkenazy"]])");
  EXPECT_TRUE(cross.empty());
}

TEST(DirectEvalTest, BestNTruncatesSortedResults) {
  Fixture fx(kCatalogXml, PaperCosts());
  auto all = fx.Run(R"(cd[title["piano"]])");
  ASSERT_GE(all.size(), 2u);
  auto top1 = fx.Run(R"(cd[title["piano"]])", 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0], all[0]);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i].cost, all[i - 1].cost);
  }
}

TEST(DirectEvalTest, AtLeastOneLeafMustMatch) {
  // Both leaves deletable and absent from the data: without the rule the
  // query would "match" every cd at pure deletion cost.
  CostModel model;
  model.SetDeleteCost(NodeType::kText, "zzz", 1);
  model.SetDeleteCost(NodeType::kText, "yyy", 1);
  Fixture fx(kCatalogXml, std::move(model));
  auto results = fx.Run(R"(cd[title["zzz" and "yyy"]])");
  EXPECT_TRUE(results.empty());
  // If one of them matches, deleting the other is fine.
  CostModel model2;
  model2.SetDeleteCost(NodeType::kText, "zzz", 1);
  Fixture fx2(kCatalogXml, std::move(model2));
  auto results2 = fx2.Run(R"(cd[title["piano" and "zzz"]])");
  // cd1: piano matches, zzz deleted (1). cd2: track title "allegro
  // piano" via two insertions + deletion (3).
  ASSERT_EQ(results2.size(), 2u);
  EXPECT_EQ(results2[0].cost, 1);
  EXPECT_EQ(results2[1].cost, 3);
}

TEST(DirectEvalTest, UnknownLabelsYieldNothing) {
  Fixture fx(kCatalogXml);
  EXPECT_TRUE(fx.Run(R"(nonexistent[title["piano"]])").empty());
  EXPECT_TRUE(fx.Run(R"(cd[title["qqqqq"]])").empty());
}

TEST(DirectEvalTest, MatchesOracleOnPaperExample) {
  Fixture fx(kCatalogXml, PaperCosts());
  for (const char* text : {
           R"(cd[title["piano" and "concerto"] and composer["rachmaninov"]])",
           R"(cd[title["piano" and "concerto"]])",
           R"(cd[track[title["vivace"]]])",
           R"(cd[title["piano" and ("concerto" or "sonata")]])",
           R"(cd[composer["rachmaninov"] or performer["ashkenazy"]])",
           R"(cd[title["piano"] and composer])",
           "cd",
       }) {
    EXPECT_EQ(fx.Run(text), fx.Oracle(text)) << text;
  }
}

TEST(DirectEvalTest, CacheDoesNotChangeResults) {
  Fixture fx(kCatalogXml, PaperCosts());
  const char* text =
      R"(cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]])";
  EvalStats with_cache, without_cache;
  DirectEvaluator::Options no_cache;
  no_cache.use_cache = false;
  auto a = fx.Run(text, SIZE_MAX, {}, &with_cache);
  auto b = fx.Run(text, SIZE_MAX, no_cache, &without_cache);
  EXPECT_EQ(a, b);
  EXPECT_GT(with_cache.cache_hits, 0u)
      << "deletion bridges must share subtree evaluations";
  EXPECT_GT(without_cache.fetches, with_cache.fetches);
}

TEST(DirectEvalTest, FullScanMatchesIndexed) {
  Fixture fx(kCatalogXml, PaperCosts());
  DirectEvaluator::Options scan;
  scan.full_scan = true;
  for (const char* text : {
           R"(cd[title["piano" and "concerto"]])",
           R"(cd[composer["rachmaninov"] or performer["ashkenazy"]])",
       }) {
    EXPECT_EQ(fx.Run(text, SIZE_MAX, scan), fx.Run(text)) << text;
  }
}

TEST(DirectEvalTest, AndShortCircuitSkipsRightConjunct) {
  Fixture fx(kCatalogXml);
  EvalStats stats;
  // The first conjunct has no matches anywhere, so the title subtree
  // must never be fetched.
  auto results =
      fx.Run(R"(cd[nonexistent["x"] and title["piano"]])", SIZE_MAX, {},
             &stats);
  EXPECT_TRUE(results.empty());
  EXPECT_GT(stats.and_short_circuits, 0u);
  // Equivalent query with conjuncts swapped still returns nothing (the
  // right conjunct now fails, no short-circuit).
  EvalStats stats2;
  auto swapped =
      fx.Run(R"(cd[title["piano"] and nonexistent["x"]])", SIZE_MAX, {},
             &stats2);
  EXPECT_TRUE(swapped.empty());
  EXPECT_EQ(stats2.and_short_circuits, 0u);
}

TEST(DirectEvalTest, EmptyDataTree) {
  DataTreeBuilder builder;
  auto tree = std::move(builder).Build(CostModel());
  ASSERT_TRUE(tree.ok());
  index::LabelIndex empty_index = index::LabelIndex::BuildFromTree(*tree);
  auto q = query::Parse(R"(cd[title["piano"]])");
  ASSERT_TRUE(q.ok());
  auto expanded = query::ExpandedQuery::Build(*q, CostModel());
  ASSERT_TRUE(expanded.ok());
  DirectEvaluator evaluator(EncodedTree::Of(*tree), empty_index,
                            tree->labels());
  EXPECT_TRUE(evaluator.BestN(*expanded, 10).empty());
}

}  // namespace
}  // namespace approxql::engine
