// The paper's worked example as an executable specification: the §6
// cost table over a catalog shaped like Figure 1(b), checked against
// the ranking behaviours the introduction promises:
//   - exact matches first;
//   - CDs with a matching *track* title after CDs with a matching title
//     (insertions = more specific context);
//   - the performer "Rachmaninov" after the composer (renaming);
//   - the category "piano concerto" after the title (renaming);
//   - MCs/DVDs after CDs (root renaming);
//   - coordination-level match: one missing keyword != no result.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/database.h"

namespace approxql::engine {
namespace {

using cost::CostModel;

constexpr const char* kSection6Costs = R"(
insert struct category 4
insert struct cd 2
insert struct composer 5
insert struct performer 5
insert struct title 3
delete struct composer 7
delete text concerto 6
delete text piano 8
delete struct title 5
delete struct track 3
rename struct cd dvd 6
rename struct cd mc 4
rename struct composer performer 4
rename text concerto sonata 3
rename struct title category 4
)";

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::string> docs = {
        // d0: the ideal answer.
        "<catalog><cd id='d0'><title>piano concerto</title>"
        "<composer>rachmaninov</composer></cd></catalog>",
        // d1: the match sits in a track title (two insertions: the
        // tracks and track elements, 1 each by default).
        "<catalog><cd id='d1'><tracks><track>"
        "<title>piano concerto</title></track></tracks>"
        "<composer>rachmaninov</composer></cd></catalog>",
        // d2: performer instead of composer (rename 4).
        "<catalog><cd id='d2'><title>piano concerto</title>"
        "<performer>rachmaninov</performer></cd></catalog>",
        // d3: category instead of title (rename 4).
        "<catalog><cd id='d3'><category>piano concerto</category>"
        "<composer>rachmaninov</composer></cd></catalog>",
        // d4: an MC (root rename 4).
        "<catalog><mc id='d4'><title>piano concerto</title>"
        "<composer>rachmaninov</composer></mc></catalog>",
        // d5: only one of the two title keywords (delete concerto, 6).
        "<catalog><cd id='d5'><title>piano etudes</title>"
        "<composer>rachmaninov</composer></cd></catalog>",
        // d6: no match at all.
        "<catalog><cd id='d6'><title>goldberg variations</title>"
        "<composer>bach</composer></cd></catalog>",
    };
    auto model = CostModel::ParseConfig(kSection6Costs);
    ASSERT_TRUE(model.ok()) << model.status();
    auto built = Database::BuildFromXml(docs, std::move(model).value());
    ASSERT_TRUE(built.ok()) << built.status();
    db_ = std::make_unique<Database>(std::move(built).value());
  }

  /// Executes and maps each answer to the id attribute of its document.
  std::vector<std::pair<std::string, cost::Cost>> Ranked(
      const std::string& query, Strategy strategy) {
    ExecOptions options;
    options.strategy = strategy;
    options.n = SIZE_MAX;
    auto answers = db_->Execute(query, options);
    APPROXQL_CHECK(answers.ok()) << answers.status();
    std::vector<std::pair<std::string, cost::Cost>> out;
    for (const auto& answer : *answers) {
      // The id attribute was normalized into an id element whose word
      // child carries the value.
      std::string xml = db_->MaterializeXml(answer.root);
      size_t at = xml.find("<id>");
      APPROXQL_CHECK(at != std::string::npos) << xml;
      out.emplace_back(xml.substr(at + 4, 2), answer.cost);
    }
    return out;
  }

  std::unique_ptr<Database> db_;
};

TEST_F(PaperExampleTest, IntroductionRankingIsReproduced) {
  const std::string query =
      R"(cd[title["piano" and "concerto"] and composer["rachmaninov"]])";
  for (Strategy strategy : {Strategy::kDirect, Strategy::kSchema}) {
    auto ranked = Ranked(query, strategy);
    ASSERT_EQ(ranked.size(), 6u);
    // d0 exact.
    EXPECT_EQ(ranked[0].first, "d0");
    EXPECT_EQ(ranked[0].second, 0);
    // d1 track title: insert tracks (1) + track (1).
    EXPECT_EQ(ranked[1].first, "d1");
    EXPECT_EQ(ranked[1].second, 2);
    // d2/d3/d4 all cost 4 (one renaming each); order falls back to
    // document order.
    EXPECT_EQ(ranked[2].second, 4);
    EXPECT_EQ(ranked[3].second, 4);
    EXPECT_EQ(ranked[4].second, 4);
    std::vector<std::string> middle = {ranked[2].first, ranked[3].first,
                                       ranked[4].first};
    EXPECT_EQ(middle, (std::vector<std::string>{"d2", "d3", "d4"}));
    // d5: concerto deleted.
    EXPECT_EQ(ranked[5].first, "d5");
    EXPECT_EQ(ranked[5].second, 6);
    // d6 is never retrieved: composer "bach" cannot become
    // "rachmaninov" and title keywords are absent.
  }
}

TEST_F(PaperExampleTest, TrackTitlePreferenceViaInsertionCosts) {
  // Searching track titles explicitly: d1 is the best match (only the
  // tracks wrapper is inserted, cost 1); d0's flat title requires
  // deleting the track selector (cost 3).
  const std::string query = R"(cd[track[title["piano" and "concerto"]]])";
  auto ranked = Ranked(query, Strategy::kSchema);
  ASSERT_GE(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].first, "d1");
  EXPECT_EQ(ranked[0].second, 1);
  EXPECT_EQ(ranked[1].first, "d0");
  EXPECT_EQ(ranked[1].second, 3);
}

TEST_F(PaperExampleTest, SeparatedRepresentationQuery) {
  // The §3 example with two "or"s spans four conjunctive queries; the
  // engine evaluates them in one pass.
  const std::string query =
      R"(cd[title["piano" and ("concerto" or "sonata")] and )"
      R"((composer["rachmaninov"] or performer["ashkenazy"])])";
  for (Strategy strategy : {Strategy::kDirect, Strategy::kSchema}) {
    auto ranked = Ranked(query, strategy);
    ASSERT_GE(ranked.size(), 2u);
    EXPECT_EQ(ranked[0].first, "d0");
    EXPECT_EQ(ranked[0].second, 0);
  }
}

TEST_F(PaperExampleTest, ResultsAreSubtreesAnchoredAtTheEmbeddingRoot) {
  ExecOptions options;
  options.n = 1;
  auto answers =
      db_->Execute(R"(cd[title["piano" and "concerto"]])", options);
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), 1u);
  std::string xml = db_->MaterializeXml((*answers)[0].root);
  EXPECT_EQ(xml,
            "<cd><id>d0</id><title>piano concerto</title>"
            "<composer>rachmaninov</composer></cd>");
}

TEST_F(PaperExampleTest, KeywordOnlyBaselineWouldMissPreferences) {
  // Demonstrates the introduction's point: a keyword-style query (words
  // anywhere under catalog) retrieves everything containing the terms
  // but cannot express the user's structural preferences — d0 (composer
  // rachmaninov) and d2 (performer rachmaninov) tie exactly, whereas the
  // structured query of IntroductionRankingIsReproduced separates them.
  auto ranked = Ranked(R"(catalog["piano" and "concerto"])",
                       Strategy::kDirect);
  // d0-d4 contain both words; d5 matches via the deletable "concerto";
  // only d6 (neither word) is excluded by the leaf rule.
  ASSERT_EQ(ranked.size(), 6u);
  cost::Cost d0_cost = -1, d2_cost = -2;
  for (const auto& [id, cost] : ranked) {
    if (id == "d0") d0_cost = cost;
    if (id == "d2") d2_cost = cost;
  }
  EXPECT_EQ(d0_cost, d2_cost);
}

}  // namespace
}  // namespace approxql::engine
