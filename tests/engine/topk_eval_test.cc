#include "engine/topk_eval.h"

#include <gtest/gtest.h>

#include <string>

#include "engine/direct_eval.h"
#include "query/ast.h"

namespace approxql::engine {
namespace {

using cost::CostModel;
using doc::DataTree;
using doc::DataTreeBuilder;

constexpr std::string_view kCatalogXml =
    "<catalog>"
    "<cd><title>piano concerto</title><composer>rachmaninov</composer></cd>"
    "<cd><category>piano concerto</category>"
    "<tracks><track><title>vivace</title></track>"
    "<track><title>allegro piano</title></track></tracks>"
    "<performer>ashkenazy</performer></cd>"
    "<mc><title>piano sonata</title><composer>chopin</composer></mc>"
    "</catalog>";

CostModel PaperCosts() {
  auto model = CostModel::ParseConfig(
      "insert struct category 4\n"
      "insert struct cd 2\n"
      "insert struct composer 5\n"
      "insert struct performer 5\n"
      "insert struct title 3\n"
      "delete struct composer 7\n"
      "delete text concerto 6\n"
      "delete text piano 8\n"
      "delete struct title 5\n"
      "delete struct track 3\n"
      "rename struct cd dvd 6\n"
      "rename struct cd mc 4\n"
      "rename struct composer performer 4\n"
      "rename text concerto sonata 3\n"
      "rename struct title category 4\n");
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

struct Fixture {
  explicit Fixture(std::string_view xml, CostModel cost_model = CostModel())
      : model(std::move(cost_model)) {
    DataTreeBuilder builder;
    auto s = builder.AddDocumentXml(xml);
    APPROXQL_CHECK(s.ok()) << s;
    auto built = std::move(builder).Build(model);
    APPROXQL_CHECK(built.ok());
    tree = std::make_unique<DataTree>(std::move(built).value());
    schema = std::make_unique<schema::Schema>(
        schema::Schema::Build(tree.get(), model));
    index = std::make_unique<index::LabelIndex>(
        index::LabelIndex::BuildFromTree(*tree));
  }

  query::ExpandedQuery Expand(const std::string& text) {
    auto q = query::Parse(text);
    APPROXQL_CHECK(q.ok()) << q.status();
    auto expanded = query::ExpandedQuery::Build(*q, model);
    APPROXQL_CHECK(expanded.ok());
    return std::move(expanded).value();
  }

  std::vector<RootCost> Direct(const std::string& text, size_t n = SIZE_MAX) {
    auto expanded = Expand(text);
    DirectEvaluator evaluator(EncodedTree::Of(*tree), *index, tree->labels());
    return evaluator.BestN(expanded, n);
  }

  std::vector<RootCost> Schema(const std::string& text, size_t n = SIZE_MAX,
                               SchemaEvaluator::Options options = {},
                               SchemaEvalStats* stats = nullptr) {
    auto expanded = Expand(text);
    SchemaEvaluator evaluator(*schema, *tree, options);
    auto results = evaluator.BestN(expanded, n);
    if (stats != nullptr) *stats = evaluator.stats();
    return results;
  }

  CostModel model;
  std::unique_ptr<DataTree> tree;
  std::unique_ptr<schema::Schema> schema;
  std::unique_ptr<index::LabelIndex> index;
};

const char* const kQueries[] = {
    R"(cd[title["piano" and "concerto"] and composer["rachmaninov"]])",
    R"(cd[title["piano" and "concerto"]])",
    R"(cd[track[title["vivace"]]])",
    R"(cd[title["piano" and ("concerto" or "sonata")]])",
    R"(cd[composer["rachmaninov"] or performer["ashkenazy"]])",
    R"(cd[title["piano"] and composer])",
    R"(cd[title["piano" and "sonata"]])",
    R"(cd[title["vivace"]])",
    R"(cd[performer])",
    "cd",
    R"(nonexistent[title["x"]])",
};

TEST(SchemaEvalTest, MatchesDirectEvaluationAllResults) {
  Fixture fx(kCatalogXml, PaperCosts());
  for (const char* text : kQueries) {
    EXPECT_EQ(fx.Schema(text), fx.Direct(text)) << text;
  }
}

TEST(SchemaEvalTest, MatchesDirectEvaluationDefaultCosts) {
  Fixture fx(kCatalogXml);
  for (const char* text : kQueries) {
    EXPECT_EQ(fx.Schema(text), fx.Direct(text)) << text;
  }
}

TEST(SchemaEvalTest, BestNPrefixesAgree) {
  Fixture fx(kCatalogXml, PaperCosts());
  for (const char* text : kQueries) {
    auto all_direct = fx.Direct(text);
    for (size_t n : {size_t{1}, size_t{2}, size_t{5}}) {
      auto top = fx.Schema(text, n);
      ASSERT_LE(top.size(), n);
      size_t expect = std::min(n, all_direct.size());
      ASSERT_EQ(top.size(), expect) << text << " n=" << n;
      // Costs must agree entry-by-entry (roots may permute among ties).
      for (size_t i = 0; i < top.size(); ++i) {
        EXPECT_EQ(top[i].cost, all_direct[i].cost) << text << " i=" << i;
      }
    }
  }
}

TEST(SchemaEvalTest, SmallKStillCorrectViaIncrement) {
  Fixture fx(kCatalogXml, PaperCosts());
  SchemaEvaluator::Options options;
  options.initial_k = 1;
  options.delta_k = 1;
  for (const char* text : kQueries) {
    SchemaEvalStats stats;
    auto results = fx.Schema(text, SIZE_MAX, options, &stats);
    EXPECT_EQ(results, fx.Direct(text)) << text;
  }
}

TEST(SchemaEvalTest, TopKQueriesSortedAndValid) {
  Fixture fx(kCatalogXml, PaperCosts());
  auto expanded = fx.Expand(R"(cd[title["piano" and "concerto"]])");
  SchemaEvaluator evaluator(*fx.schema, *fx.tree);
  TopKList queries = evaluator.TopKQueries(expanded, 10);
  ASSERT_FALSE(queries.empty());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_TRUE(queries[i]->leaf_matched);
    if (i > 0) {
      EXPECT_GE(queries[i]->cost, queries[i - 1]->cost);
    }
  }
  // The cheapest second-level query is the exact match (cost 0) rooted
  // at the cd class.
  EXPECT_EQ(queries[0]->cost, 0);
  EXPECT_EQ(fx.tree->labels().Get(queries[0]->label), "cd");
}

TEST(SchemaEvalTest, TopKListsArePrefixesAcrossK) {
  Fixture fx(kCatalogXml, PaperCosts());
  auto expanded = fx.Expand(R"(cd[title["piano" and "concerto"]])");
  SchemaEvaluator evaluator(*fx.schema, *fx.tree);
  TopKList small = evaluator.TopKQueries(expanded, 3);
  TopKList large = evaluator.TopKQueries(expanded, 12);
  ASSERT_LE(small.size(), large.size());
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(SchemaEvaluator::Signature(*small[i]),
              SchemaEvaluator::Signature(*large[i]))
        << "top-k list for k must be a prefix of the list for k' > k";
    EXPECT_EQ(small[i]->cost, large[i]->cost);
  }
}

TEST(SchemaEvalTest, SecondaryFindsExactInstances) {
  Fixture fx(kCatalogXml, PaperCosts());
  auto expanded = fx.Expand(R"(cd[title["piano" and "concerto"]])");
  SchemaEvaluator evaluator(*fx.schema, *fx.tree);
  TopKList queries = evaluator.TopKQueries(expanded, 1);
  ASSERT_EQ(queries.size(), 1u);
  index::Posting roots = evaluator.ExecuteSecondary(queries[0]);
  // Exactly one cd has a direct title with both words.
  ASSERT_EQ(roots.size(), 1u);
  EXPECT_EQ(fx.tree->label(roots[0]), "cd");
}

TEST(SchemaEvalTest, IncrementalGrowsKWhenResultsMissing) {
  // The first skeletons may produce no data results ("the last
  // proposition is an implication", Section 7.1): classes share a parent
  // in the schema while no instances co-occur. Force that situation.
  constexpr std::string_view xml =
      "<lib>"
      "<doc><a>x</a></doc>"
      "<doc><b>y</b></doc>"
      "</lib>";
  Fixture fx(xml);
  // Schema has doc/a and doc/b under one doc class, but no single doc
  // instance has both.
  auto results = fx.Schema(R"(doc[a["x"] and b["y"]])");
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(fx.Direct(R"(doc[a["x"] and b["y"]])"), results);
}

TEST(SchemaEvalTest, SignatureCanonicalizesChildOrder) {
  SkeletonEntry leaf_a;
  leaf_a.pre = 5;
  leaf_a.label = 2;
  SkeletonEntry leaf_b;
  leaf_b.pre = 7;
  leaf_b.label = 3;
  SkeletonEntry parent1;
  parent1.pre = 1;
  parent1.label = 1;
  parent1.pointers = {std::make_shared<const SkeletonEntry>(leaf_a),
                      std::make_shared<const SkeletonEntry>(leaf_b)};
  SkeletonEntry parent2 = parent1;
  std::swap(parent2.pointers[0], parent2.pointers[1]);
  EXPECT_EQ(SchemaEvaluator::Signature(parent1),
            SchemaEvaluator::Signature(parent2));
  // Different structure -> different signature.
  SkeletonEntry other = parent1;
  other.pointers.pop_back();
  EXPECT_NE(SchemaEvaluator::Signature(parent1),
            SchemaEvaluator::Signature(other));
}

TEST(SchemaEvalTest, RootRenamingCrossesClasses) {
  // Renaming the query root shifts the search space across schema
  // classes (paper: "the renaming of the query root from cd to mc
  // shifts the search space from CDs to MCs").
  Fixture fx(kCatalogXml, PaperCosts());
  auto expanded = fx.Expand(R"(cd[title["piano"]])");
  SchemaEvaluator evaluator(*fx.schema, *fx.tree);
  TopKList queries = evaluator.TopKQueries(expanded, 20);
  bool saw_cd = false;
  bool saw_mc = false;
  for (const auto& skeleton : queries) {
    std::string_view label = fx.tree->labels().Get(skeleton->label);
    saw_cd |= label == "cd";
    saw_mc |= label == "mc";
  }
  EXPECT_TRUE(saw_cd);
  EXPECT_TRUE(saw_mc);
}

TEST(SchemaEvalTest, SharedTextClassDistinguishesWords) {
  // "piano" and "vivace" live in different classes, but "piano" and
  // "concerto" share one; the secondary index must still separate the
  // words via its (class, label) keys.
  Fixture fx(kCatalogXml, CostModel());
  auto expanded = fx.Expand(R"(cd[title["concerto"]])");
  SchemaEvaluator evaluator(*fx.schema, *fx.tree);
  TopKList queries = evaluator.TopKQueries(expanded, 5);
  ASSERT_FALSE(queries.empty());
  index::Posting roots = evaluator.ExecuteSecondary(queries[0]);
  ASSERT_EQ(roots.size(), 1u) << "only cd1's title contains 'concerto'";
  // Same class path, different word: no false sharing.
  auto expanded2 = fx.Expand(R"(cd[title["nonexistentword"]])");
  SchemaEvaluator evaluator2(*fx.schema, *fx.tree);
  EXPECT_TRUE(evaluator2.TopKQueries(expanded2, 5).empty());
}

TEST(SchemaEvalTest, DescribeSkeletonShowsRenamedLabels) {
  Fixture fx(kCatalogXml, PaperCosts());
  auto expanded = fx.Expand(R"(cd[title["piano" and "sonata"]])");
  SchemaEvaluator evaluator(*fx.schema, *fx.tree);
  TopKList queries = evaluator.TopKQueries(expanded, 10);
  ASSERT_FALSE(queries.empty());
  // The only match renames the root to mc (see direct-eval tests); the
  // description must show the mc class path.
  std::string description = evaluator.DescribeSkeleton(*queries[0]);
  EXPECT_NE(description.find("mc@"), std::string::npos) << description;
  EXPECT_NE(description.find("piano"), std::string::npos);
  EXPECT_NE(description.find("sonata"), std::string::npos);
}

TEST(SchemaEvalTest, SharedMemoReusesSkeletonsAcrossEvaluators) {
  // Two evaluators over the same schema/tree share second-level results:
  // the second run answers its skeletons from the memo instead of
  // re-executing them, and returns exactly the same ranking.
  Fixture fx(kCatalogXml, PaperCosts());
  SharedSkeletonMemo memo;
  SchemaEvaluator::Options options;
  options.shared_memo = &memo;

  SchemaEvalStats cold_stats;
  auto cold =
      fx.Schema(R"(cd[title["piano"]])", SIZE_MAX, options, &cold_stats);
  SchemaEvalStats warm_stats;
  auto warm =
      fx.Schema(R"(cd[title["piano"]])", SIZE_MAX, options, &warm_stats);

  EXPECT_EQ(warm, cold);
  EXPECT_EQ(cold_stats.shared_memo_hits, 0u);
  EXPECT_GT(warm_stats.shared_memo_hits, 0u);
  EXPECT_LT(warm_stats.second_level_executed,
            cold_stats.second_level_executed);
  // Without a memo the run matches too (the memo is a pure cache).
  EXPECT_EQ(fx.Schema(R"(cd[title["piano"]])"), cold);
}

TEST(SchemaEvalTest, SharedMemoAgreesAcrossOverlappingQueries) {
  // Queries that differ only in one branch share most skeletons — the
  // PR 2 disjunct fan-out shape. Memoized runs must stay bit-identical
  // to memo-free runs for every query.
  Fixture fx(kCatalogXml, PaperCosts());
  SharedSkeletonMemo memo;
  SchemaEvaluator::Options options;
  options.shared_memo = &memo;
  for (const char* text : kQueries) {
    EXPECT_EQ(fx.Schema(text, SIZE_MAX, options), fx.Schema(text))
        << text;
  }
}

TEST(SchemaEvalTest, StatsReportWork) {
  Fixture fx(kCatalogXml, PaperCosts());
  SchemaEvalStats stats;
  SchemaEvaluator::Options options;
  options.initial_k = 2;
  options.delta_k = 2;
  fx.Schema(R"(cd[title["piano"]])", SIZE_MAX, options, &stats);
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_GT(stats.entries_created, 0u);
  EXPECT_GT(stats.second_level_executed, 0u);
}

}  // namespace
}  // namespace approxql::engine
