// Equivalence of the two engine strategies across collection *shapes*:
// term skew, template depth/recursion and renaming load all change
// which code paths dominate (segment sizes, insertion depths, k
// growth), so the sweep runs the generated-query workload over a grid
// of generator parameters.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"

namespace approxql::engine {
namespace {

// (zipf_theta x10, template_max_depth, renamings_per_label)
using Shape = std::tuple<int, int, int>;

class ShapeSweepTest : public ::testing::TestWithParam<Shape> {};

TEST_P(ShapeSweepTest, StrategiesAgreeOnGeneratedQueries) {
  auto [theta_x10, depth, renamings] = GetParam();
  gen::XmlGenOptions options;
  options.seed = 1000 + static_cast<uint64_t>(theta_x10) * 31 +
                 static_cast<uint64_t>(depth) * 7 +
                 static_cast<uint64_t>(renamings);
  options.total_elements = 3000;
  options.element_names = 25;
  options.vocabulary = 400;
  options.words_per_element = 5.0;
  options.zipf_theta = theta_x10 / 10.0;
  options.template_max_depth = static_cast<size_t>(depth);
  options.template_nodes = 50;
  gen::XmlGenerator generator(options);
  auto tree = generator.GenerateTree(cost::CostModel());
  ASSERT_TRUE(tree.ok());
  auto db = Database::FromDataTree(std::move(tree).value(),
                                   cost::CostModel());
  ASSERT_TRUE(db.ok());

  gen::QueryGenOptions q_options;
  q_options.seed = options.seed + 5;
  q_options.renamings_per_label = static_cast<size_t>(renamings);
  gen::QueryGenerator qgen(*db, q_options);
  for (std::string_view pattern : {gen::kPattern1, gen::kPattern2}) {
    for (int i = 0; i < 3; ++i) {
      auto generated = qgen.Generate(pattern);
      ASSERT_TRUE(generated.ok());
      ExecOptions direct;
      direct.strategy = Strategy::kDirect;
      direct.n = 25;
      direct.cost_model = &generated->cost_model;
      auto a = db->Execute(generated->query, direct);
      ASSERT_TRUE(a.ok()) << generated->text;

      ExecOptions schema = direct;
      schema.strategy = Strategy::kSchema;
      SchemaEvalStats stats;
      schema.schema_stats_out = &stats;
      auto b = db->Execute(generated->query, schema);
      ASSERT_TRUE(b.ok()) << generated->text;

      if (!stats.k_capped) {
        ASSERT_EQ(a->size(), b->size()) << generated->text;
      } else {
        ASSERT_LE(b->size(), a->size()) << generated->text;
      }
      for (size_t j = 0; j < b->size(); ++j) {
        EXPECT_EQ((*a)[j].cost, (*b)[j].cost)
            << generated->text << " j=" << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweepTest,
    ::testing::Combine(::testing::Values(5, 10, 15),   // zipf theta x10
                       ::testing::Values(4, 8),        // template depth
                       ::testing::Values(0, 3, 8)),    // renamings
    [](const auto& info) {
      return "theta" + std::to_string(std::get<0>(info.param)) + "_depth" +
             std::to_string(std::get<1>(info.param)) + "_ren" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace approxql::engine
