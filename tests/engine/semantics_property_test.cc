// Semantic laws of the cost-based transformation model, checked on
// random data: relaxing a cost model can only help, scaling costs
// scales scores, and best-n lists nest.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "engine/database.h"
#include "util/random.h"

namespace approxql::engine {
namespace {

using cost::Cost;
using cost::CostModel;
using util::Rng;

const char* const kNames[] = {"a", "b", "c", "d"};
const char* const kWords[] = {"u", "v", "w", "x"};

std::string RandomDocument(Rng& rng) {
  std::string out = "<r>";
  std::vector<const char*> stack = {"r"};
  for (int i = 0; i < 30; ++i) {
    int choice = static_cast<int>(rng.Uniform(4));
    if (choice == 0 && stack.size() > 1) {
      out += std::string("</") + stack.back() + ">";
      stack.pop_back();
    } else if (choice == 1 && stack.size() < 5) {
      const char* name = kNames[rng.Uniform(4)];
      out += std::string("<") + name + ">";
      stack.push_back(name);
    } else {
      out += std::string(kWords[rng.Uniform(4)]) + " ";
    }
  }
  while (!stack.empty()) {
    out += std::string("</") + stack.back() + ">";
    stack.pop_back();
  }
  return out;
}

std::map<doc::NodeId, Cost> ResultMap(const Database& db,
                                      const std::string& query,
                                      const CostModel* model = nullptr) {
  ExecOptions options;
  options.strategy = Strategy::kDirect;
  options.n = SIZE_MAX;
  options.cost_model = model;
  auto answers = db.Execute(query, options);
  APPROXQL_CHECK(answers.ok()) << answers.status();
  std::map<doc::NodeId, Cost> out;
  for (const auto& answer : *answers) out[answer.root] = answer.cost;
  return out;
}

class SemanticsPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  Database BuildRandomDb(Rng& rng, CostModel model = CostModel()) {
    std::vector<std::string> docs;
    for (size_t i = 0; i < 2 + rng.Uniform(2); ++i) {
      docs.push_back(RandomDocument(rng));
    }
    auto db = Database::BuildFromXml(docs, std::move(model));
    APPROXQL_CHECK(db.ok());
    return std::move(db).value();
  }
};

TEST_P(SemanticsPropertyTest, RelaxingTheModelOnlyHelps) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 613 + 7);
  Database db = BuildRandomDb(rng);
  const std::string query = R"(a[b["u"] and "v"])";

  CostModel strict;  // no transformations
  CostModel relaxed;
  relaxed.SetRenameCost(NodeType::kStruct, "b", "c", 3);
  relaxed.SetDeleteCost(NodeType::kText, "v", 4);
  relaxed.SetDeleteCost(NodeType::kStruct, "b", 5);

  auto strict_results = ResultMap(db, query, &strict);
  auto relaxed_results = ResultMap(db, query, &relaxed);
  // Every strict result survives with an equal-or-lower cost.
  for (const auto& [root, cost] : strict_results) {
    auto it = relaxed_results.find(root);
    ASSERT_NE(it, relaxed_results.end()) << "root " << root;
    EXPECT_LE(it->second, cost);
  }
  EXPECT_GE(relaxed_results.size(), strict_results.size());
}

TEST_P(SemanticsPropertyTest, ScalingCostsScalesScores) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 617 + 3);
  // Insert costs are part of the encoding, so both databases are built
  // with their own scaled model (scale factor 3).
  CostModel base;
  base.set_default_insert_cost(2);
  base.SetInsertCost(NodeType::kStruct, "b", 4);
  base.SetRenameCost(NodeType::kText, "u", "w", 5);
  base.SetDeleteCost(NodeType::kText, "v", 7);
  CostModel scaled;
  scaled.set_default_insert_cost(6);
  scaled.SetInsertCost(NodeType::kStruct, "b", 12);
  scaled.SetRenameCost(NodeType::kText, "u", "w", 15);
  scaled.SetDeleteCost(NodeType::kText, "v", 21);

  std::vector<std::string> docs;
  for (int i = 0; i < 3; ++i) docs.push_back(RandomDocument(rng));
  auto db1 = Database::BuildFromXml(docs, base);
  auto db2 = Database::BuildFromXml(docs, scaled);
  ASSERT_TRUE(db1.ok());
  ASSERT_TRUE(db2.ok());

  const std::string query = R"(a[c["u" and "v"]])";
  auto r1 = ResultMap(*db1, query);
  auto r2 = ResultMap(*db2, query);
  ASSERT_EQ(r1.size(), r2.size());
  for (const auto& [root, cost] : r1) {
    auto it = r2.find(root);
    ASSERT_NE(it, r2.end());
    EXPECT_EQ(it->second, 3 * cost) << "root " << root;
  }
}

TEST_P(SemanticsPropertyTest, BestNListsNest) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 619 + 11);
  CostModel model;
  model.SetRenameCost(NodeType::kText, "u", "v", 2);
  model.SetDeleteCost(NodeType::kText, "w", 3);
  Database db = BuildRandomDb(rng, std::move(model));
  const std::string query = R"(a["u" and "w"])";
  for (Strategy strategy : {Strategy::kDirect, Strategy::kSchema}) {
    ExecOptions options;
    options.strategy = strategy;
    options.n = SIZE_MAX;
    auto all = db.Execute(query, options);
    ASSERT_TRUE(all.ok());
    for (size_t n = 1; n <= all->size(); ++n) {
      options.n = n;
      auto top = db.Execute(query, options);
      ASSERT_TRUE(top.ok());
      ASSERT_EQ(top->size(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ((*top)[i].cost, (*all)[i].cost);
      }
    }
  }
}

TEST_P(SemanticsPropertyTest, ResultCostsAreCheapestEmbeddings) {
  // Lowering one rename cost lowers exactly the results that use it.
  Rng rng(static_cast<uint64_t>(GetParam()) * 631 + 2);
  Database db = BuildRandomDb(rng);
  CostModel cheap, pricey;
  cheap.SetRenameCost(NodeType::kText, "u", "x", 1);
  pricey.SetRenameCost(NodeType::kText, "u", "x", 9);
  const std::string query = R"(a["u"])";
  auto with_cheap = ResultMap(db, query, &cheap);
  auto with_pricey = ResultMap(db, query, &pricey);
  ASSERT_EQ(with_cheap.size(), with_pricey.size());
  for (const auto& [root, cost] : with_cheap) {
    Cost other = with_pricey.at(root);
    EXPECT_LE(cost, other);
    // A gap can only come from the renamed-leaf option: 8 = 9 - 1.
    EXPECT_TRUE(other == cost || other - cost <= 8) << root;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemanticsPropertyTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace approxql::engine
