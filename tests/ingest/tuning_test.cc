// Ingest runtime tuning knobs: WAL group commit (one fsync amortized
// over every concurrently queued add, observable through the
// ingest_group_commit_batch histogram) and threshold-driven
// auto-checkpointing (background checkpoints bound how much WAL a
// crash replays). Both are pure performance features — the tests pin
// the part that must NOT change: the documents and their ids.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cost/cost_model.h"
#include "engine/database.h"
#include "ingest/mutable_corpus.h"
#include "shard/sharded_database.h"
#include "storage/kv_factory.h"

namespace approxql::ingest {
namespace {

cost::CostModel TestModel() {
  cost::CostModel model;
  for (int i = 0; i < 10; ++i) {
    model.SetDeleteCost(NodeType::kStruct, "elem" + std::to_string(i),
                        static_cast<cost::Cost>(2 + (i * 3) % 7));
    model.SetDeleteCost(NodeType::kText, "term" + std::to_string(i),
                        static_cast<cost::Cost>(1 + (i * 5) % 6));
  }
  return model;
}

std::string MakeDoc(size_t i) {
  const std::string a = "elem" + std::to_string(i % 5);
  const std::string t = "term" + std::to_string(i % 7);
  return "<" + a + "><elem3>" + t + "</elem3></" + a + ">";
}

class IngestTuningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("approxql_ingest_tuning_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(IngestTuningTest, GroupCommitBatchesConcurrentAddsWithoutReordering) {
  MutableCorpus::Options options;
  options.data_dir = dir_;
  options.num_shards = 1;
  options.model = TestModel();
  // A real window makes batches near-certain even on a slow machine;
  // correctness must not depend on it (0 batches opportunistically).
  options.group_commit_window_us = 2000;
  auto corpus = MutableCorpus::Open(std::move(options));
  ASSERT_TRUE(corpus.ok()) << corpus.status();

  constexpr size_t kThreads = 4;
  constexpr size_t kDocsPerThread = 16;
  std::vector<std::vector<std::pair<doc::NodeId, std::string>>> acked(
      kThreads);
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < kDocsPerThread; ++i) {
        const std::string xml = MakeDoc(t * kDocsPerThread + i);
        auto ack = (*corpus)->AddDocument(xml);
        ASSERT_TRUE(ack.ok()) << ack.status();
        acked[t].push_back({ack->doc_root, xml});
      }
    });
  }
  for (auto& writer : writers) writer.join();
  ASSERT_EQ((*corpus)->document_count(), kThreads * kDocsPerThread);

  // Every queued add the leader drained is one histogram sample; with
  // 4 writers and a 2 ms window at least one batch MUST have formed
  // (and even without the window the samples record batch size 1).
  const std::string dump = (*corpus)->metrics()->DumpText();
  const auto pos = dump.find("ingest_group_commit_batch count=");
  ASSERT_NE(pos, std::string::npos) << dump;
  EXPECT_EQ(dump.find("ingest_group_commit_batch count=0 "),
            std::string::npos)
      << dump;

  // Group commit must not perturb id assignment: global ids are handed
  // out in WAL order, so rebuilding from the acked documents sorted by
  // root id reproduces the exact layout — bit-identical answers.
  std::vector<std::pair<doc::NodeId, std::string>> all;
  for (const auto& per_thread : acked) {
    all.insert(all.end(), per_thread.begin(), per_thread.end());
  }
  std::sort(all.begin(), all.end());
  std::vector<std::string> in_id_order;
  for (auto& [root, xml] : all) in_id_order.push_back(std::move(xml));
  auto oracle = engine::Database::BuildFromXml(in_id_order, TestModel());
  ASSERT_TRUE(oracle.ok()) << oracle.status();

  auto snapshot = (*corpus)->snapshot();
  engine::ExecOptions exec;
  exec.n = SIZE_MAX;
  shard::ScatterOptions scatter;
  const char* kQueries[] = {R"(elem1[elem3 and "term2"])",
                            R"(elem3["term4"])"};
  for (const char* query : kQueries) {
    auto expected = oracle->Execute(query, exec);
    ASSERT_TRUE(expected.ok()) << expected.status();
    auto got = snapshot->Execute(query, exec, scatter);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got->size(), expected->size()) << query;
    for (size_t i = 0; i < got->size(); ++i) {
      EXPECT_EQ((*got)[i].root, (*expected)[i].root) << query;
      EXPECT_EQ((*got)[i].cost, (*expected)[i].cost) << query;
    }
  }
}

TEST_F(IngestTuningTest, AutoCheckpointBoundsCrashRecoveryReplay) {
  constexpr size_t kDocs = 64;
  {
    MutableCorpus::Options options;
    options.data_dir = dir_;
    options.num_shards = 1;
    options.model = TestModel();
    options.store_kind = storage::StoreKind::kDisk;
    // Trip a background checkpoint every ~8 WAL records.
    options.checkpoint_wal_records = 8;
    auto corpus = MutableCorpus::Open(std::move(options));
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    for (size_t i = 0; i < kDocs; ++i) {
      ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
    }
    // The checkpoint thread runs behind the ingest path; give it a
    // bounded moment to pass the threshold at least once.
    bool checkpointed = false;
    for (int spin = 0; spin < 500 && !checkpointed; ++spin) {
      const std::string dump = (*corpus)->metrics()->DumpText();
      checkpointed =
          dump.find("ingest_auto_checkpoints ") != std::string::npos &&
          dump.find("ingest_auto_checkpoints 0\n") == std::string::npos;
      if (!checkpointed) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    EXPECT_TRUE(checkpointed)
        << "no auto checkpoint in 5s despite 64 adds at threshold 8";
    (*corpus)->Abandon();  // crash — no clean-close checkpoint
  }

  // Recover from the crash: every acked document must be back, but the
  // WAL replay must be bounded by the records since the last BACKGROUND
  // checkpoint — not the whole history.
  MutableCorpus::Options reopen_options;
  reopen_options.data_dir = dir_;
  reopen_options.num_shards = 1;
  reopen_options.model = TestModel();
  reopen_options.store_kind = storage::StoreKind::kDisk;
  MutableCorpus::OpenStats stats;
  auto reopened = MutableCorpus::Open(std::move(reopen_options), nullptr,
                                      &stats);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->document_count(), kDocs);
  EXPECT_LT(stats.replayed_records, kDocs)
      << "replay was not bounded by checkpoints";
}

}  // namespace
}  // namespace approxql::ingest
