// Crash recovery pins the PR's core acceptance invariant: after a crash
// (simulated by Abandon — drop all unflushed buffers, stop mutating)
// and a reopen with WAL replay, every durably-acked document is
// present, no partial document is visible, and answers are
// bit-identical to an oracle Database built from exactly the acked
// document set — for both strategies, at 1, 2 and 4 shards, over both
// store kinds. The inline threshold is set low so every run exercises
// value-log spill replay, not just inline postings.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cost/cost_model.h"
#include "engine/database.h"
#include "index/label_index.h"
#include "ingest/mutable_corpus.h"
#include "shard/sharded_database.h"
#include "storage/bptree.h"
#include "storage/spilling_store.h"
#include "storage/vlog/value_log.h"
#include "storage/wal/log_format.h"
#include "util/crc32.h"
#include "util/status.h"
#include "util/varint.h"

namespace approxql::ingest {
namespace {

using engine::ExecOptions;
using engine::QueryAnswer;
using engine::Strategy;

const char* const kQueries[] = {
    R"(elem0["term1"])",
    R"(elem1[elem3 and "term2"])",
    R"(elem2[elem4["term0"]])",
};

cost::CostModel TestModel() {
  cost::CostModel model;
  for (int i = 0; i < 10; ++i) {
    model.SetDeleteCost(NodeType::kStruct, "elem" + std::to_string(i),
                        static_cast<cost::Cost>(2 + (i * 3) % 7));
    model.SetDeleteCost(NodeType::kText, "term" + std::to_string(i),
                        static_cast<cost::Cost>(1 + (i * 5) % 6));
  }
  return model;
}

std::string MakeDoc(size_t i) {
  const std::string a = "elem" + std::to_string(i % 5);
  const std::string b = "elem" + std::to_string((i + 2) % 6);
  const std::string c = "elem" + std::to_string((i + 4) % 7);
  // Pad one text child past any reasonable inline threshold so most
  // documents carry at least one spilled posting.
  const std::string t1 = "term" + std::to_string(i % 7);
  const std::string t2 = "term" + std::to_string((i + 3) % 8);
  return "<" + a + "><" + b + ">" + t1 + "</" + b + "><" + c + ">" + t2 +
         " " + t1 + "</" + c + "></" + a + ">";
}

void ExpectSameAnswers(const std::vector<QueryAnswer>& got,
                       const std::vector<QueryAnswer>& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].root, want[i].root) << label << " answer " << i;
    EXPECT_EQ(got[i].cost, want[i].cost) << label << " answer " << i;
  }
}

std::vector<QueryAnswer> Answers(const shard::ShardedDatabase& snap,
                                 const char* query, Strategy strategy) {
  ExecOptions options;
  options.strategy = strategy;
  options.n = SIZE_MAX;  // all answers: the strongest equality
  auto answers = snap.Execute(query, options, shard::ScatterOptions{});
  EXPECT_TRUE(answers.ok()) << answers.status();
  return answers.ok() ? *answers : std::vector<QueryAnswer>{};
}

/// Recovered corpus must answer exactly like a Database built from the
/// acked documents in ack order.
void ExpectMatchesOracle(const MutableCorpus& corpus,
                         const std::vector<std::string>& acked,
                         const std::string& label) {
  auto oracle = engine::Database::BuildFromXml(acked, TestModel());
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  auto snap = corpus.snapshot();
  for (const char* query : kQueries) {
    for (Strategy strategy : {Strategy::kSchema, Strategy::kDirect}) {
      ExecOptions options;
      options.strategy = strategy;
      options.n = SIZE_MAX;
      auto want = oracle->Execute(query, options);
      ASSERT_TRUE(want.ok()) << want.status();
      ExpectSameAnswers(Answers(*snap, query, strategy), *want,
                        label + " " + query +
                            (strategy == Strategy::kSchema ? " schema"
                                                           : " direct"));
    }
  }
}

struct RecoveryParam {
  size_t num_shards;
  storage::StoreKind store_kind;
};

class RecoveryTest : public ::testing::TestWithParam<RecoveryParam> {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("approxql_recovery_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  MutableCorpus::Options Opts() {
    MutableCorpus::Options options;
    options.data_dir = dir_;
    options.num_shards = GetParam().num_shards;
    options.store_kind = GetParam().store_kind;
    options.model = TestModel();
    options.inline_threshold = 16;  // force value-log spills
    return options;
  }

  std::string dir_;
};

TEST_P(RecoveryTest, AckedDocumentsSurviveTheCrash) {
  std::vector<std::string> acked;
  uint64_t epoch_before = 0;
  {
    auto corpus = MutableCorpus::Open(Opts());
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    for (size_t i = 0; i < 18; ++i) {
      ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
      acked.push_back(MakeDoc(i));
    }
    epoch_before = (*corpus)->epoch();
    (*corpus)->Abandon();  // crash: nothing flushed past the last ack
  }
  MutableCorpus::OpenStats stats;
  auto recovered = MutableCorpus::Open(Opts(), nullptr, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(stats.recovered_documents, acked.size());
  EXPECT_EQ(stats.replayed_records, acked.size());
  EXPECT_EQ((*recovered)->document_count(), acked.size());
  EXPECT_EQ((*recovered)->epoch(), epoch_before);
  ExpectMatchesOracle(**recovered, acked, "recovered");
}

TEST_P(RecoveryTest, RemovalsReplayAndIdsAreStable) {
  std::vector<std::vector<QueryAnswer>> before;
  uint64_t epoch_before = 0;
  {
    auto corpus = MutableCorpus::Open(Opts());
    ASSERT_TRUE(corpus.ok());
    std::vector<doc::NodeId> roots;
    for (size_t i = 0; i < 10; ++i) {
      auto result = (*corpus)->AddDocument(MakeDoc(i));
      ASSERT_TRUE(result.ok());
      roots.push_back(result->doc_root);
    }
    ASSERT_TRUE((*corpus)->RemoveDocument(roots[2]).ok());
    ASSERT_TRUE((*corpus)->RemoveDocument(roots[7]).ok());
    ASSERT_TRUE((*corpus)->RemoveDocument(roots[9]).ok());
    epoch_before = (*corpus)->epoch();
    auto snap = (*corpus)->snapshot();
    for (const char* query : kQueries) {
      before.push_back(Answers(*snap, query, Strategy::kSchema));
    }
    (*corpus)->Abandon();
  }
  auto recovered = MutableCorpus::Open(Opts());
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ((*recovered)->document_count(), 7u);
  EXPECT_EQ((*recovered)->epoch(), epoch_before);  // 10 adds + 3 removes
  // Global ids survive recovery verbatim (holes included), so the
  // pre-crash snapshot's answers are the exact expectation.
  auto snap = (*recovered)->snapshot();
  for (size_t q = 0; q < std::size(kQueries); ++q) {
    ExpectSameAnswers(Answers(*snap, kQueries[q], Strategy::kSchema),
                      before[q], std::string("replayed ") + kQueries[q]);
  }
}

TEST_P(RecoveryTest, CheckpointBoundsReplay) {
  std::vector<std::string> acked;
  {
    auto corpus = MutableCorpus::Open(Opts());
    ASSERT_TRUE(corpus.ok());
    for (size_t i = 0; i < 12; ++i) {
      ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
      acked.push_back(MakeDoc(i));
    }
    ASSERT_TRUE((*corpus)->Checkpoint().ok());
    for (size_t i = 12; i < 17; ++i) {
      ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
      acked.push_back(MakeDoc(i));
    }
    (*corpus)->Abandon();
  }
  MutableCorpus::OpenStats stats;
  auto recovered = MutableCorpus::Open(Opts(), nullptr, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_EQ(stats.recovered_documents, 17u);
  // Only the post-checkpoint suffix replays from the WALs.
  EXPECT_EQ(stats.replayed_records, 5u);
  ExpectMatchesOracle(**recovered, acked, "post-checkpoint");
}

TEST_P(RecoveryTest, TornWalTailDropsOnlyTheUnackedSuffix) {
  // Per query: the pre-crash answers tagged with their document roots.
  std::vector<std::vector<std::pair<QueryAnswer, doc::NodeId>>> tagged;
  doc::NodeId lost_root = 0;
  {
    auto corpus = MutableCorpus::Open(Opts());
    ASSERT_TRUE(corpus.ok());
    doc::NodeId last_on_shard0 = 0;
    for (size_t i = 0; i < 11; ++i) {
      auto result = (*corpus)->AddDocument(MakeDoc(i));
      ASSERT_TRUE(result.ok());
      if (result->shard_index == 0) last_on_shard0 = result->doc_root;
    }
    lost_root = last_on_shard0;
    ASSERT_NE(lost_root, 0u);
    auto snap = (*corpus)->snapshot();
    for (const char* query : kQueries) {
      std::vector<std::pair<QueryAnswer, doc::NodeId>> per_query;
      for (const auto& answer : Answers(*snap, query, Strategy::kSchema)) {
        per_query.emplace_back(answer, snap->DocRootOf(answer.root));
      }
      tagged.push_back(std::move(per_query));
    }
    (*corpus)->Abandon();
  }
  // Tear the tail of shard 0's WAL: its final record (the last acked
  // document on that shard) becomes unreadable, exactly as if the
  // crash hit mid-append before the ack went out.
  const std::string wal_path = dir_ + "/shard0.wal";
  const auto full = std::filesystem::file_size(wal_path);
  std::filesystem::resize_file(wal_path, full - 5);

  MutableCorpus::OpenStats stats;
  auto recovered = MutableCorpus::Open(Opts(), nullptr, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(stats.any_tail_truncated);
  EXPECT_EQ((*recovered)->document_count(), 10u);
  // Surviving documents keep their global ids and costs, so with n=all
  // the recovered answers are exactly the pre-crash answers minus the
  // torn document's.
  auto snap = (*recovered)->snapshot();
  for (size_t q = 0; q < std::size(kQueries); ++q) {
    std::vector<QueryAnswer> want;
    for (const auto& [answer, doc_root] : tagged[q]) {
      if (doc_root != lost_root) want.push_back(answer);
    }
    ExpectSameAnswers(Answers(*snap, kQueries[q], Strategy::kSchema), want,
                      std::string("torn ") + kQueries[q]);
  }
}

TEST_P(RecoveryTest, DoubleRecoveryIsDeterministic) {
  std::vector<std::string> acked;
  {
    auto corpus = MutableCorpus::Open(Opts());
    ASSERT_TRUE(corpus.ok());
    for (size_t i = 0; i < 9; ++i) {
      ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
      acked.push_back(MakeDoc(i));
    }
    (*corpus)->Abandon();
  }
  for (int round = 0; round < 2; ++round) {
    auto recovered = MutableCorpus::Open(Opts());
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    ExpectMatchesOracle(**recovered, acked,
                        "round " + std::to_string(round));
    (*recovered)->Abandon();
  }
}

class RecoveryFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("approxql_recovery_fault_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  MutableCorpus::Options Opts(storage::StoreKind kind) {
    MutableCorpus::Options options;
    options.data_dir = dir_;
    options.num_shards = 1;
    options.store_kind = kind;
    options.model = TestModel();
    options.inline_threshold = 16;
    return options;
  }

  std::string dir_;
};

TEST_F(RecoveryFaultTest, FailedRecoveryMustNotCheckpointOrTruncateTheWal) {
  std::vector<std::string> acked;
  {
    auto corpus = MutableCorpus::Open(Opts(storage::StoreKind::kMem));
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
      acked.push_back(MakeDoc(i));
    }
    (*corpus)->Abandon();
  }
  // Append a WAL-layer-valid record with an unknown type: replay fails
  // inside DurableShard::Recover, after the shard already holds its WAL
  // handle — exactly the state where a destructor checkpoint would
  // stamp a snapshot with last_seq and truncate away the good records.
  const std::string wal_path = dir_ + "/shard0.wal";
  const auto clean_size = std::filesystem::file_size(wal_path);
  {
    std::string body;
    util::PutVarint64(&body, 6);   // next consecutive seq after 5 adds
    util::PutVarint32(&body, 99);  // unknown record type
    std::string record;
    util::PutVarint64(&record, body.size());
    record.append(body);
    storage::PutFixed32(&record, util::Crc32c(body));
    std::ofstream out(wal_path, std::ios::binary | std::ios::app);
    out.write(record.data(), record.size());
  }
  const auto poisoned_size = std::filesystem::file_size(wal_path);

  auto failed = MutableCorpus::Open(Opts(storage::StoreKind::kMem));
  ASSERT_FALSE(failed.ok());
  // The failed open must leave durable state untouched: no checkpoint
  // published from the partially replayed tree, every WAL byte kept.
  EXPECT_EQ(std::filesystem::file_size(wal_path), poisoned_size);
  EXPECT_FALSE(std::filesystem::exists(dir_ + "/shard0.CURRENT"));

  // Strip the bad record (as an operator would) and reopen: every
  // acked document is still there.
  std::filesystem::resize_file(wal_path, clean_size);
  auto recovered = MutableCorpus::Open(Opts(storage::StoreKind::kMem));
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  ExpectMatchesOracle(**recovered, acked, "repaired");
}

TEST_F(RecoveryFaultTest, StalePostingEntriesForceAStoreRebuild) {
  std::vector<std::string> acked;
  {
    auto corpus = MutableCorpus::Open(Opts(storage::StoreKind::kDisk));
    ASSERT_TRUE(corpus.ok()) << corpus.status();
    for (size_t i = 0; i < 5; ++i) {
      ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
      acked.push_back(MakeDoc(i));
    }
  }  // clean close: the destructor checkpoint publishes generation 1

  // Plant a posting entry far past the checkpointed tree under a label
  // replay will never touch — what a bounded page cache could have
  // flushed mid-apply for a document that was never logged or acked.
  {
    auto kv = storage::DiskKvStore::Open(dir_ + "/shard0-1.kv",
                                         /*create_if_missing=*/false);
    ASSERT_TRUE(kv.ok()) << kv.status();
    auto vlog = storage::ValueLog::Open(dir_ + "/shard0-1.vlog");
    ASSERT_TRUE(vlog.ok()) << vlog.status();
    storage::SpillingStore store(std::move(*kv), std::move(*vlog), 16);
    std::string key = "ix#s";
    util::PutVarint32(&key, 200);  // a label no document uses
    std::string value;
    index::SerializePosting(index::Posting{1000000}, &value);
    ASSERT_TRUE(store.Put(key, value).ok());
    ASSERT_TRUE(store.Flush().ok());
  }

  MutableCorpus::OpenStats stats;
  auto recovered =
      MutableCorpus::Open(Opts(storage::StoreKind::kDisk), nullptr, &stats);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_TRUE(stats.any_store_rebuilt);
  ExpectMatchesOracle(**recovered, acked, "rebuilt");
}

INSTANTIATE_TEST_SUITE_P(
    ShardsAndStores, RecoveryTest,
    ::testing::Values(RecoveryParam{1, storage::StoreKind::kMem},
                      RecoveryParam{2, storage::StoreKind::kMem},
                      RecoveryParam{2, storage::StoreKind::kDisk},
                      RecoveryParam{4, storage::StoreKind::kDisk}),
    [](const ::testing::TestParamInfo<RecoveryParam>& info) {
      return std::to_string(info.param.num_shards) + "shard_" +
             (info.param.store_kind == storage::StoreKind::kMem ? "mem"
                                                                : "disk");
    });

}  // namespace
}  // namespace approxql::ingest
