// MutableCorpus semantics: live AddDocument/RemoveDocument against the
// published copy-on-write generations. The load-bearing invariants:
//   - answers over the mutable corpus are bit-identical to a Database
//     built from the acked documents in ack order (global ids are
//     assigned sequentially at ack time, independent of placement);
//   - snapshot() is isolated — a held generation never changes, no
//     matter how many mutations land after it;
//   - every accepted mutation moves the epoch and the generation's
//     layout fingerprint (result caches must never cross corpus states);
//   - a directory remembers its configuration and refuses to reopen
//     under a different one.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "engine/database.h"
#include "ingest/mutable_corpus.h"
#include "shard/sharded_database.h"
#include "util/status.h"

namespace approxql::ingest {
namespace {

using engine::ExecOptions;
using engine::QueryAnswer;
using engine::Strategy;

const char* const kQueries[] = {
    R"(elem0["term1"])",
    R"(elem1[elem3 and "term2"])",
    R"(elem2[elem4["term0"]])",
    R"(elem3["term4" and "term5"])",
};

cost::CostModel TestModel() {
  cost::CostModel model;
  for (int i = 0; i < 10; ++i) {
    model.SetDeleteCost(NodeType::kStruct, "elem" + std::to_string(i),
                        static_cast<cost::Cost>(2 + (i * 3) % 7));
    model.SetDeleteCost(NodeType::kText, "term" + std::to_string(i),
                        static_cast<cost::Cost>(1 + (i * 5) % 6));
  }
  return model;
}

/// Deterministic little documents over the elem*/term* vocabulary;
/// varied enough that different queries rank them differently.
std::string MakeDoc(size_t i) {
  const std::string a = "elem" + std::to_string(i % 5);
  const std::string b = "elem" + std::to_string((i + 2) % 6);
  const std::string c = "elem" + std::to_string((i + 4) % 7);
  const std::string t1 = "term" + std::to_string(i % 7);
  const std::string t2 = "term" + std::to_string((i + 3) % 8);
  return "<" + a + "><" + b + ">" + t1 + "</" + b + "><" + c + ">" + t2 +
         "</" + c + "></" + a + ">";
}

std::vector<QueryAnswer> OracleAnswers(const std::vector<std::string>& docs,
                                       const char* query, Strategy strategy,
                                       size_t n) {
  auto db = engine::Database::BuildFromXml(docs, TestModel());
  EXPECT_TRUE(db.ok()) << db.status();
  ExecOptions options;
  options.strategy = strategy;
  options.n = n;
  auto answers = db->Execute(query, options);
  EXPECT_TRUE(answers.ok()) << answers.status();
  return *answers;
}

std::vector<QueryAnswer> CorpusAnswers(const shard::ShardedDatabase& snap,
                                       const char* query, Strategy strategy,
                                       size_t n) {
  ExecOptions options;
  options.strategy = strategy;
  options.n = n;
  auto answers = snap.Execute(query, options, shard::ScatterOptions{});
  EXPECT_TRUE(answers.ok()) << answers.status();
  return *answers;
}

void ExpectSameAnswers(const std::vector<QueryAnswer>& got,
                       const std::vector<QueryAnswer>& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].root, want[i].root) << label << " answer " << i;
    EXPECT_EQ(got[i].cost, want[i].cost) << label << " answer " << i;
  }
}

class MutableCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("approxql_corpus_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  MutableCorpus::Options Opts(size_t num_shards,
                              storage::StoreKind kind =
                                  storage::StoreKind::kMem) {
    MutableCorpus::Options options;
    options.data_dir = dir_;
    options.num_shards = num_shards;
    options.store_kind = kind;
    options.model = TestModel();
    options.inline_threshold = 16;  // force value-log spills early
    return options;
  }

  std::string dir_;
};

TEST_F(MutableCorpusTest, AddedDocumentsMatchTheOracleBitForBit) {
  auto corpus = MutableCorpus::Open(Opts(2));
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  std::vector<std::string> acked;
  uint64_t last_epoch = 0;
  doc::NodeId last_root = 0;
  for (size_t i = 0; i < 12; ++i) {
    auto result = (*corpus)->AddDocument(MakeDoc(i));
    ASSERT_TRUE(result.ok()) << result.status();
    acked.push_back(MakeDoc(i));
    // One WAL record per add: the epoch advances by exactly one.
    EXPECT_EQ(result->epoch, last_epoch + 1);
    last_epoch = result->epoch;
    // Global ids are handed out in ack order, placement-independent.
    EXPECT_GT(result->doc_root, last_root);
    last_root = result->doc_root;
    EXPECT_GT(result->length, 0u);
    EXPECT_LT(result->shard_index, 2u);
  }
  EXPECT_EQ((*corpus)->document_count(), 12u);

  auto snap = (*corpus)->snapshot();
  for (const char* query : kQueries) {
    for (Strategy strategy : {Strategy::kSchema, Strategy::kDirect}) {
      ExpectSameAnswers(
          CorpusAnswers(*snap, query, strategy, 5),
          OracleAnswers(acked, query, strategy, 5),
          std::string(query) +
              (strategy == Strategy::kSchema ? " schema" : " direct"));
    }
  }
}

TEST_F(MutableCorpusTest, HeldSnapshotsAreIsolatedFromLaterMutations) {
  auto corpus = MutableCorpus::Open(Opts(2));
  ASSERT_TRUE(corpus.ok());
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
  }
  auto old_snap = (*corpus)->snapshot();
  std::vector<std::vector<QueryAnswer>> before;
  for (const char* query : kQueries) {
    before.push_back(CorpusAnswers(*old_snap, query, Strategy::kSchema, 10));
  }
  const uint32_t old_fingerprint = old_snap->LayoutFingerprint();

  for (size_t i = 4; i < 12; ++i) {
    ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
  }
  // Root id 1 is the first document's root (super-root is 0).
  auto removed = (*corpus)->RemoveDocument(1);
  ASSERT_TRUE(removed.ok()) << removed.status();

  // The held generation still answers exactly as it did.
  for (size_t q = 0; q < std::size(kQueries); ++q) {
    ExpectSameAnswers(
        CorpusAnswers(*old_snap, kQueries[q], Strategy::kSchema, 10),
        before[q], std::string("held ") + kQueries[q]);
  }
  // The new generation is a different corpus state under a different
  // fingerprint.
  auto new_snap = (*corpus)->snapshot();
  EXPECT_NE(new_snap->LayoutFingerprint(), old_fingerprint);
  EXPECT_NE(new_snap.get(), old_snap.get());
}

TEST_F(MutableCorpusTest, RemoveLeavesAPermanentHole) {
  auto corpus = MutableCorpus::Open(Opts(2));
  ASSERT_TRUE(corpus.ok());
  std::vector<doc::NodeId> roots;
  for (size_t i = 0; i < 6; ++i) {
    auto result = (*corpus)->AddDocument(MakeDoc(i));
    ASSERT_TRUE(result.ok());
    roots.push_back(result->doc_root);
  }
  auto removed = (*corpus)->RemoveDocument(roots[3]);
  ASSERT_TRUE(removed.ok()) << removed.status();
  EXPECT_EQ((*corpus)->document_count(), 5u);

  // The removed document contributes no answers any more.
  auto snap = (*corpus)->snapshot();
  for (const char* query : kQueries) {
    for (const auto& answer :
         CorpusAnswers(*snap, query, Strategy::kSchema, SIZE_MAX)) {
      EXPECT_NE(snap->DocRootOf(answer.root), roots[3]) << query;
    }
  }

  // Its id is burned: double remove and unknown ids are NotFound, and a
  // re-added identical document gets a fresh id past the hole.
  EXPECT_TRUE((*corpus)->RemoveDocument(roots[3]).status().IsNotFound());
  EXPECT_TRUE((*corpus)->RemoveDocument(999999).status().IsNotFound());
  auto readded = (*corpus)->AddDocument(MakeDoc(3));
  ASSERT_TRUE(readded.ok());
  EXPECT_GT(readded->doc_root, roots.back());
}

TEST_F(MutableCorpusTest, EpochAndStatusesTrackDurableSequenceNumbers) {
  auto corpus = MutableCorpus::Open(Opts(4));
  ASSERT_TRUE(corpus.ok());
  for (size_t i = 0; i < 9; ++i) {
    ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
  }
  ASSERT_TRUE((*corpus)->RemoveDocument(1).ok());
  EXPECT_EQ((*corpus)->epoch(), 10u);  // 9 adds + 1 remove
  auto statuses = (*corpus)->ShardStatuses();
  ASSERT_EQ(statuses.size(), 4u);
  uint64_t seq_sum = 0;
  size_t documents = 0;
  for (const auto& status : statuses) {
    seq_sum += status.last_seq;
    documents += status.documents;
    EXPECT_FALSE(status.poisoned);
  }
  EXPECT_EQ(seq_sum, 10u);
  EXPECT_EQ(documents, 8u);
  EXPECT_EQ((*corpus)->snapshot()->epoch(), 10u);

  // The ingest_* metrics the serving layer dumps are fed from here.
  const std::string dump = (*corpus)->metrics()->DumpText();
  EXPECT_NE(dump.find("ingest_docs_added"), std::string::npos);
  EXPECT_NE(dump.find("ingest_docs_removed"), std::string::npos);
  EXPECT_NE(dump.find("ingest_epoch"), std::string::npos);
}

TEST_F(MutableCorpusTest, CheckpointPreservesAnswersAndTruncatesWals) {
  auto corpus = MutableCorpus::Open(Opts(2, storage::StoreKind::kDisk));
  ASSERT_TRUE(corpus.ok()) << corpus.status();
  std::vector<std::string> acked;
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(i)).ok());
    acked.push_back(MakeDoc(i));
  }
  const uint64_t wal_bytes_before = (*corpus)->ShardStatuses()[0].wal_bytes;
  ASSERT_TRUE((*corpus)->Checkpoint().ok());
  // The WAL shrank (records folded into the checkpoint), the durable
  // sequence numbering did not move.
  auto statuses = (*corpus)->ShardStatuses();
  EXPECT_LT(statuses[0].wal_bytes, wal_bytes_before);
  EXPECT_EQ((*corpus)->epoch(), 8u);
  auto snap = (*corpus)->snapshot();
  for (const char* query : kQueries) {
    ExpectSameAnswers(CorpusAnswers(*snap, query, Strategy::kSchema, 5),
                      OracleAnswers(acked, query, Strategy::kSchema, 5),
                      std::string("post-checkpoint ") + query);
  }
  // And the corpus keeps accepting mutations afterwards.
  ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(8)).ok());
  EXPECT_EQ((*corpus)->epoch(), 9u);
}

TEST_F(MutableCorpusTest, AbandonStopsMutationsButNotReads) {
  auto corpus = MutableCorpus::Open(Opts(2));
  ASSERT_TRUE(corpus.ok());
  ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(0)).ok());
  auto snap = (*corpus)->snapshot();
  (*corpus)->Abandon();
  EXPECT_FALSE((*corpus)->AddDocument(MakeDoc(1)).ok());
  EXPECT_FALSE((*corpus)->RemoveDocument(1).ok());
  // The published generation is immutable state — still queryable
  // (CorpusAnswers asserts the Execute succeeds).
  CorpusAnswers(*snap, kQueries[0], Strategy::kSchema, 5);
}

TEST_F(MutableCorpusTest, DirectoryPinsItsConfiguration) {
  {
    auto corpus = MutableCorpus::Open(Opts(2));
    ASSERT_TRUE(corpus.ok());
    ASSERT_TRUE((*corpus)->AddDocument(MakeDoc(0)).ok());
  }
  auto wrong_shards = MutableCorpus::Open(Opts(4));
  ASSERT_FALSE(wrong_shards.ok());
  EXPECT_TRUE(wrong_shards.status().IsCorruption()) << wrong_shards.status();

  auto wrong_store = MutableCorpus::Open(Opts(2, storage::StoreKind::kDisk));
  ASSERT_FALSE(wrong_store.ok());
  EXPECT_TRUE(wrong_store.status().IsCorruption()) << wrong_store.status();

  auto same = MutableCorpus::Open(Opts(2));
  ASSERT_TRUE(same.ok()) << same.status();
  EXPECT_EQ((*same)->document_count(), 1u);
}

}  // namespace
}  // namespace approxql::ingest
