// Sharded-corpus invariants and the subsystem's core contract: a
// document-partitioned corpus answers every query bit-identically to
// the same corpus in one engine::Database — for both strategies, at
// 1/2/4/8 shards, with the shared cost bound on and off, inline and on
// a thread pool.
#include "shard/sharded_database.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "service/query_service.h"
#include "service/thread_pool.h"
#include "shard/layout_manifest.h"
#include "util/random.h"

namespace approxql::shard {
namespace {

using engine::Database;
using engine::ExecOptions;
using engine::QueryAnswer;
using engine::Strategy;

// ~40 documents of ~100 elements: enough to spread across 8 shards.
Database MakeSyntheticDb() {
  gen::XmlGenOptions options;
  options.seed = 20020314;
  options.total_elements = 4000;
  options.vocabulary = 800;
  gen::XmlGenerator generator(options);
  cost::CostModel model;
  auto tree = generator.GenerateTree(model);
  APPROXQL_CHECK(tree.ok()) << tree.status();
  auto db = Database::FromDataTree(std::move(tree).value(), model);
  APPROXQL_CHECK(db.ok()) << db.status();
  return std::move(db).value();
}

constexpr std::string_view kOrHeavyPattern =
    "name[(name[term] or term) and (term or term) and (name[term] or term)]";

std::vector<gen::GeneratedQuery> MakeQueries(const Database& db) {
  gen::QueryGenOptions options;
  options.seed = 4242;
  options.renamings_per_label = 3;
  gen::QueryGenerator generator(db, options);
  std::vector<gen::GeneratedQuery> queries;
  constexpr std::string_view kPatterns[] = {gen::kPattern1, gen::kPattern2,
                                            gen::kPattern3, kOrHeavyPattern};
  for (size_t i = 0; i < 12; ++i) {
    auto generated = generator.Generate(kPatterns[i % 4]);
    APPROXQL_CHECK(generated.ok()) << generated.status();
    queries.push_back(std::move(generated).value());
  }
  return queries;
}

std::string Canonical(const std::vector<QueryAnswer>& answers) {
  std::string out;
  for (const auto& answer : answers) {
    out += std::to_string(answer.root) + ":" + std::to_string(answer.cost) +
           ";";
  }
  return out;
}

class ShardedDatabaseTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(MakeSyntheticDb());
    queries_ = new std::vector<gen::GeneratedQuery>(MakeQueries(*db_));
  }
  static void TearDownTestSuite() {
    delete queries_;
    queries_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static ShardedDatabase MakeSharded(size_t num_shards) {
    auto sharded =
        ShardedDatabase::Partition(db_->tree(), db_->cost_model(), num_shards);
    APPROXQL_CHECK(sharded.ok()) << sharded.status();
    return std::move(sharded).value();
  }

  static Database* db_;
  static std::vector<gen::GeneratedQuery>* queries_;
};

Database* ShardedDatabaseTest::db_ = nullptr;
std::vector<gen::GeneratedQuery>* ShardedDatabaseTest::queries_ = nullptr;

TEST_F(ShardedDatabaseTest, PartitionSpanInvariants) {
  for (size_t num_shards : {size_t{1}, size_t{3}, size_t{8}}) {
    ShardedDatabase sharded = MakeSharded(num_shards);
    ASSERT_EQ(sharded.num_shards(), num_shards);

    // Global id space: one shared super-root plus each shard's nodes
    // minus its own super-root.
    size_t nodes = 1;
    size_t documents = 0;
    for (size_t s = 0; s < num_shards; ++s) {
      nodes += sharded.shard(s).tree().size() - 1;
      documents += sharded.shard_spans(s).size();
    }
    EXPECT_EQ(nodes, db_->tree().size());
    auto stats = sharded.GetStats();
    EXPECT_EQ(stats.nodes, db_->tree().size());
    EXPECT_EQ(stats.documents, documents);

    // Per-shard spans are strictly increasing in local and global start,
    // contiguous in the local id space, and translate consistently.
    std::vector<std::pair<doc::NodeId, size_t>> doc_order;
    for (size_t s = 0; s < num_shards; ++s) {
      const auto& spans = sharded.shard_spans(s);
      doc::NodeId expected_local = 1;  // 0 is the shard's super-root
      for (const DocSpan& span : spans) {
        EXPECT_EQ(span.local_start, expected_local);
        expected_local += span.length;
        doc_order.push_back({span.global_start, s});
        for (uint32_t off = 0; off < span.length; ++off) {
          EXPECT_EQ(sharded.ToGlobal(s, span.local_start + off),
                    span.global_start + off);
        }
        // Every node of the span belongs to the document rooted at its
        // global start.
        EXPECT_EQ(sharded.DocRootOf(span.global_start), span.global_start);
        EXPECT_EQ(sharded.DocRootOf(span.global_start + span.length - 1),
                  span.global_start);
      }
      EXPECT_EQ(expected_local, sharded.shard(s).tree().size());
    }

    // Documents in global order alternate round-robin across shards.
    std::sort(doc_order.begin(), doc_order.end());
    for (size_t j = 0; j < doc_order.size(); ++j) {
      EXPECT_EQ(doc_order[j].second, j % num_shards) << "document " << j;
    }
    EXPECT_EQ(sharded.DocRootOf(0), 0u);  // super-root maps to itself
  }
}

TEST_F(ShardedDatabaseTest, DocRootOfMatchesParentWalk) {
  ShardedDatabase sharded = MakeSharded(4);
  util::Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    doc::NodeId node =
        1 + static_cast<doc::NodeId>(rng.Uniform(db_->tree().size() - 1));
    doc::NodeId walk = node;
    while (db_->tree().node(walk).parent != 0) {
      walk = db_->tree().node(walk).parent;
    }
    EXPECT_EQ(sharded.DocRootOf(node), walk) << "node " << node;
  }
}

TEST_F(ShardedDatabaseTest, GlobalSchemaMergeReproducesUnpartitionedPaths) {
  // The DataGuide is a path index: partitioning the corpus must not
  // invent or lose any label-type path, whatever the shard count.
  std::set<std::string> expected;
  const schema::Schema& schema = db_->schema();
  for (uint32_t c = 0; c < schema.size(); ++c) {
    expected.insert(schema.PathOf(c, db_->tree().labels()));
  }
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ShardedDatabase sharded = MakeSharded(num_shards);
    const GlobalSchema& global = sharded.global_schema();
    ASSERT_EQ(global.class_count(), expected.size()) << num_shards;
    std::set<std::string> merged;
    for (uint32_t g = 0; g < global.class_count(); ++g) {
      merged.insert(global.PathOf(g));
      EXPECT_EQ(global.FindPath(global.PathOf(g)), g);
    }
    EXPECT_EQ(merged, expected) << num_shards;
    EXPECT_EQ(global.FindPath("<root>/no/such/path"), UINT32_MAX);

    // Each shard's local classes map onto global classes with the same
    // path.
    for (size_t s = 0; s < num_shards; ++s) {
      const engine::Database& shard_db = sharded.shard(s);
      for (uint32_t c = 0; c < shard_db.schema().size(); ++c) {
        uint32_t g = global.GlobalClassOf(s, c);
        ASSERT_LT(g, global.class_count());
        EXPECT_EQ(global.PathOf(g),
                  shard_db.schema().PathOf(c, shard_db.tree().labels()));
      }
    }
  }
}

TEST_F(ShardedDatabaseTest, BuilderMatchesPartition) {
  const std::vector<std::string> docs = {
      "<a><b>one two</b><c>three</c></a>",
      "<a><b>four</b></a>",
      "<d><e>five six</e></d>",
      "<a><c>seven</c><c>eight</c></a>",
      "<d><e>nine</e><e>ten</e></d>",
  };
  cost::CostModel model;
  auto single = Database::BuildFromXml(docs, model);
  ASSERT_TRUE(single.ok()) << single.status();

  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{3}}) {
    ShardedDatabase::Builder builder(num_shards);
    for (const std::string& xml : docs) {
      ASSERT_TRUE(builder.AddDocumentXml(xml).ok());
    }
    EXPECT_EQ(builder.document_count(), docs.size());
    auto built = std::move(builder).Build(model);
    ASSERT_TRUE(built.ok()) << built.status();

    auto partitioned =
        ShardedDatabase::Partition(single->tree(), model, num_shards);
    ASSERT_TRUE(partitioned.ok()) << partitioned.status();

    // Same documents, same order, same shard count: identical layout and
    // identical reassembled corpus.
    EXPECT_EQ(built->LayoutFingerprint(), partitioned->LayoutFingerprint());
    EXPECT_EQ(built->MaterializeXml(0), partitioned->MaterializeXml(0));
    EXPECT_EQ(built->MaterializeXml(0), single->MaterializeXml(0));
  }
}

TEST_F(ShardedDatabaseTest, MaterializeXmlMatchesSingleDatabase) {
  ShardedDatabase sharded = MakeSharded(4);
  EXPECT_EQ(sharded.MaterializeXml(0), db_->MaterializeXml(0));
  EXPECT_EQ(sharded.MaterializeXml(0, /*pretty=*/true),
            db_->MaterializeXml(0, /*pretty=*/true));
  util::Rng rng(7);
  int checked = 0;
  while (checked < 50) {
    doc::NodeId node =
        1 + static_cast<doc::NodeId>(rng.Uniform(db_->tree().size() - 1));
    if (db_->tree().node(node).type != NodeType::kStruct) continue;
    EXPECT_EQ(sharded.MaterializeXml(node), db_->MaterializeXml(node))
        << "node " << node;
    ++checked;
  }
}

TEST_F(ShardedDatabaseTest, LayoutFingerprintDistinguishesLayouts) {
  std::set<uint32_t> fingerprints;
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    fingerprints.insert(MakeSharded(num_shards).LayoutFingerprint());
  }
  EXPECT_EQ(fingerprints.size(), 4u);
  // Deterministic for a fixed layout.
  EXPECT_EQ(MakeSharded(4).LayoutFingerprint(),
            MakeSharded(4).LayoutFingerprint());
}

void CheckScatterEquivalence(const Database& db,
                             const std::vector<gen::GeneratedQuery>& queries,
                             const ShardedDatabase& sharded,
                             Strategy strategy, service::ThreadPool* pool) {
  for (const gen::GeneratedQuery& generated : queries) {
    ExecOptions exec;
    exec.strategy = strategy;
    exec.n = 10;
    exec.cost_model = &generated.cost_model;

    engine::SchemaEvalStats single_stats;
    exec.schema_stats_out = &single_stats;
    auto expected = db.Execute(generated.query, exec);
    ASSERT_TRUE(expected.ok()) << generated.text << ": " << expected.status();
    exec.schema_stats_out = nullptr;

    for (bool bound : {true, false}) {
      ScatterOptions scatter;
      scatter.pool = pool;
      scatter.share_cost_bound = bound;
      ScatterStats stats;
      auto answers = sharded.Execute(generated.query, exec, scatter, &stats);
      ASSERT_TRUE(answers.ok())
          << generated.text << " bound=" << bound << ": " << answers.status();
      // Bit-identity holds whenever neither side hit the incremental
      // evaluator's max_k cap (a capped search may legitimately stop
      // with a shorter list; per-shard searches cap at different points
      // than the whole-corpus search).
      if (single_stats.k_capped || stats.schema.k_capped) continue;
      EXPECT_EQ(Canonical(*answers), Canonical(*expected))
          << generated.text << " shards=" << sharded.num_shards()
          << " bound=" << bound << " pooled=" << (pool != nullptr);
      ASSERT_EQ(stats.shards.size(), sharded.num_shards());
    }
  }
}

TEST_F(ShardedDatabaseTest, ScatterGatherBitIdenticalInline) {
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    ShardedDatabase sharded = MakeSharded(num_shards);
    CheckScatterEquivalence(*db_, *queries_, sharded, Strategy::kDirect,
                            nullptr);
    CheckScatterEquivalence(*db_, *queries_, sharded, Strategy::kSchema,
                            nullptr);
  }
}

TEST_F(ShardedDatabaseTest, ScatterGatherBitIdenticalOnPool) {
  service::ThreadPool pool({/*num_threads=*/4, /*queue_capacity=*/64});
  for (size_t num_shards : {size_t{2}, size_t{4}, size_t{8}}) {
    ShardedDatabase sharded = MakeSharded(num_shards);
    CheckScatterEquivalence(*db_, *queries_, sharded, Strategy::kDirect,
                            &pool);
    CheckScatterEquivalence(*db_, *queries_, sharded, Strategy::kSchema,
                            &pool);
  }
}

TEST_F(ShardedDatabaseTest, SharedCostBoundPublishes) {
  // With several shards and a query that has plenty of answers, some
  // shard must publish a finite bound (its n-th best skeleton cost).
  ShardedDatabase sharded = MakeSharded(4);
  bool saw_finite_bound = false;
  for (const gen::GeneratedQuery& generated : *queries_) {
    ExecOptions exec;
    exec.strategy = Strategy::kSchema;
    exec.n = 5;
    exec.cost_model = &generated.cost_model;
    ScatterOptions scatter;
    ScatterStats stats;
    auto answers = sharded.Execute(generated.query, exec, scatter, &stats);
    ASSERT_TRUE(answers.ok()) << answers.status();
    if (stats.final_bound != cost::kInfinite) saw_finite_bound = true;
  }
  EXPECT_TRUE(saw_finite_bound);
}

TEST_F(ShardedDatabaseTest, CancellationIsDeadlineExceededAcrossShards) {
  ShardedDatabase sharded = MakeSharded(4);
  const gen::GeneratedQuery& generated = queries_->front();
  ExecOptions exec;
  exec.strategy = Strategy::kSchema;
  exec.n = 10;
  exec.cost_model = &generated.cost_model;
  ScatterOptions scatter;
  scatter.cancelled = [] { return true; };
  ScatterStats stats;
  auto answers = sharded.Execute(generated.query, exec, scatter, &stats);
  // A partial scatter is not a correct prefix of the global ranking.
  EXPECT_FALSE(answers.ok());
  EXPECT_TRUE(answers.status().IsDeadlineExceeded()) << answers.status();
  EXPECT_TRUE(stats.cancelled);
}

TEST_F(ShardedDatabaseTest, QueryServiceShardedBackendMatchesSingle) {
  ShardedDatabase sharded = MakeSharded(4);
  service::ServiceOptions options;
  options.num_threads = 4;
  options.queue_capacity = 64;
  options.cache_capacity = 8;
  options.parallelism = 4;
  service::QueryService sharded_service(sharded, options);
  service::QueryService single_service(*db_, options);

  for (const gen::GeneratedQuery& generated : *queries_) {
    service::QueryRequest request;
    request.query_text = generated.text;
    request.exec.n = 10;
    request.exec.cost_model = &generated.cost_model;

    engine::SchemaEvalStats single_stats;
    request.exec.schema_stats_out = &single_stats;
    request.bypass_cache = true;
    service::QueryResponse expected = single_service.ExecuteNow(request);
    ASSERT_TRUE(expected.status.ok()) << expected.status;

    engine::SchemaEvalStats sharded_stats;
    request.exec.schema_stats_out = &sharded_stats;
    request.bypass_cache = false;
    service::QueryResponse first = sharded_service.ExecuteNow(request);
    ASSERT_TRUE(first.status.ok()) << first.status;
    service::QueryResponse second = sharded_service.ExecuteNow(request);
    ASSERT_TRUE(second.status.ok()) << second.status;
    EXPECT_TRUE(second.cache_hit) << generated.text;
    EXPECT_EQ(Canonical(second.answers), Canonical(first.answers));

    if (single_stats.k_capped || sharded_stats.k_capped) continue;
    EXPECT_EQ(Canonical(first.answers), Canonical(expected.answers))
        << generated.text;
  }
  // The sharded service's metrics dump carries the per-shard sections.
  EXPECT_NE(sharded_service.DumpMetrics().find("shard0_"), std::string::npos);
}

TEST_F(ShardedDatabaseTest, LayoutManifestMirrorsTheLayout) {
  for (size_t num_shards : {size_t{1}, size_t{3}, size_t{8}}) {
    ShardedDatabase sharded = MakeSharded(num_shards);
    LayoutManifest manifest = LayoutManifest::Of(sharded);

    EXPECT_EQ(manifest.num_shards(), num_shards);
    EXPECT_EQ(manifest.fingerprint(), sharded.LayoutFingerprint());
    EXPECT_EQ(manifest.cost_model().ToConfigString(),
              sharded.cost_model().ToConfigString());

    // Every translation the router performs agrees with the full corpus.
    for (size_t s = 0; s < num_shards; ++s) {
      ASSERT_EQ(manifest.shard_spans(s).size(), sharded.shard_spans(s).size());
      for (const DocSpan& span : manifest.shard_spans(s)) {
        for (uint32_t off = 0; off < span.length; ++off) {
          const doc::NodeId local = span.local_start + off;
          EXPECT_EQ(manifest.ToGlobal(s, local), sharded.ToGlobal(s, local));
        }
      }
      EXPECT_EQ(manifest.ToGlobal(s, 0), 0u);  // shard super-root
    }
    util::Rng rng(7 * num_shards + 1);
    for (int i = 0; i < 100; ++i) {
      doc::NodeId node =
          static_cast<doc::NodeId>(rng.Uniform(db_->tree().size()));
      EXPECT_EQ(manifest.DocRootOf(node), sharded.DocRootOf(node))
          << "node " << node;
    }
  }
}

TEST_F(ShardedDatabaseTest, LayoutManifestSerializeRoundTrips) {
  ShardedDatabase sharded = MakeSharded(4);
  LayoutManifest manifest = LayoutManifest::Of(sharded);
  const std::string blob = manifest.Serialize();

  auto restored = LayoutManifest::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->fingerprint(), manifest.fingerprint());
  EXPECT_EQ(restored->num_shards(), manifest.num_shards());
  EXPECT_EQ(restored->cost_model().ToConfigString(),
            manifest.cost_model().ToConfigString());
  for (size_t s = 0; s < manifest.num_shards(); ++s) {
    ASSERT_EQ(restored->shard_spans(s).size(), manifest.shard_spans(s).size());
    for (size_t d = 0; d < manifest.shard_spans(s).size(); ++d) {
      const DocSpan& a = manifest.shard_spans(s)[d];
      const DocSpan& b = restored->shard_spans(s)[d];
      EXPECT_EQ(a.local_start, b.local_start);
      EXPECT_EQ(a.global_start, b.global_start);
      EXPECT_EQ(a.length, b.length);
    }
  }
  util::Rng rng(515);
  for (int i = 0; i < 100; ++i) {
    doc::NodeId node =
        static_cast<doc::NodeId>(rng.Uniform(db_->tree().size()));
    EXPECT_EQ(restored->DocRootOf(node), sharded.DocRootOf(node));
  }

  // Corruption anywhere in the blob must be caught, not mistranslated.
  for (size_t pos : {size_t{0}, blob.size() / 2, blob.size() - 1}) {
    std::string corrupt = blob;
    corrupt[pos] ^= 0x40;
    EXPECT_FALSE(LayoutManifest::Deserialize(corrupt).ok())
        << "flip at " << pos;
  }
  EXPECT_FALSE(LayoutManifest::Deserialize(blob.substr(0, 10)).ok());
  EXPECT_FALSE(LayoutManifest::Deserialize("").ok());
}

TEST_F(ShardedDatabaseTest, LayoutManifestSaveLoadRoundTrips) {
  ShardedDatabase sharded = MakeSharded(2);
  LayoutManifest manifest = LayoutManifest::Of(sharded);
  const std::string path =
      ::testing::TempDir() + "/approxql_layout_manifest_test.aqlm";
  ASSERT_TRUE(manifest.SaveTo(path).ok());
  auto loaded = LayoutManifest::LoadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->Serialize(), manifest.Serialize());
  std::remove(path.c_str());
  EXPECT_FALSE(LayoutManifest::LoadFrom(path).ok());  // gone now
}

}  // namespace
}  // namespace approxql::shard
