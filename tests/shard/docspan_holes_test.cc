// DocSpan maps with holes: removing documents mid-shard leaves
// permanent gaps in the global id space, and the remaining spans must
// keep translating shard-local answers exactly. The oracle is a FRESH
// Database rebuilt from only the surviving documents — its ids are
// compacted, so equality is checked through the placement-independent
// tuple (survivor ordinal, offset within document, cost): if the
// holed DocSpan tables translate correctly, the two answer lists are
// identical under that translation, for both strategies, with and
// without a top-k cutoff.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "cost/cost_model.h"
#include "engine/database.h"
#include "ingest/mutable_corpus.h"
#include "shard/sharded_database.h"

namespace approxql::shard {
namespace {

using engine::ExecOptions;
using engine::QueryAnswer;
using engine::Strategy;

const char* const kQueries[] = {
    R"(elem0["term1"])",
    R"(elem1[elem3 and "term2"])",
    R"(elem2[elem4["term0"]])",
};

cost::CostModel TestModel() {
  cost::CostModel model;
  for (int i = 0; i < 10; ++i) {
    model.SetDeleteCost(NodeType::kStruct, "elem" + std::to_string(i),
                        static_cast<cost::Cost>(2 + (i * 3) % 7));
    model.SetDeleteCost(NodeType::kText, "term" + std::to_string(i),
                        static_cast<cost::Cost>(1 + (i * 5) % 6));
  }
  return model;
}

std::string MakeDoc(size_t i) {
  const std::string a = "elem" + std::to_string(i % 5);
  const std::string b = "elem" + std::to_string((i + 2) % 6);
  const std::string c = "elem" + std::to_string((i + 4) % 7);
  const std::string t1 = "term" + std::to_string(i % 7);
  const std::string t2 = "term" + std::to_string((i + 3) % 8);
  return "<" + a + "><" + b + ">" + t1 + "</" + b + "><" + c + ">" + t2 +
         "</" + c + "></" + a + ">";
}

/// (survivor ordinal, offset within the document, cost): the id-space-
/// independent form of an answer.
using Tuple = std::tuple<size_t, doc::NodeId, cost::Cost>;

struct Survivor {
  doc::NodeId root = 0;   // in whichever id space the list describes
  uint32_t length = 0;    // nodes in the document subtree
  std::string xml;
};

/// Translates `root` to its tuple against `survivors` (sorted by root).
Tuple Translate(doc::NodeId root, cost::Cost cost,
                const std::vector<Survivor>& survivors) {
  for (size_t i = 0; i < survivors.size(); ++i) {
    if (root >= survivors[i].root &&
        root < survivors[i].root + survivors[i].length) {
      return {i, root - survivors[i].root, cost};
    }
  }
  ADD_FAILURE() << "answer root " << root << " is in no surviving document";
  return {SIZE_MAX, 0, cost};
}

class DocSpanHolesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("approxql_holes_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(DocSpanHolesTest, HoledSpansMatchAFreshRebuildOfTheSurvivors) {
  ingest::MutableCorpus::Options options;
  options.data_dir = dir_;
  options.num_shards = 2;
  options.model = TestModel();
  auto corpus = ingest::MutableCorpus::Open(std::move(options));
  ASSERT_TRUE(corpus.ok()) << corpus.status();

  // 12 documents, then punch 4 holes: mid-shard, shard-initial, and
  // two adjacent (a double-width gap).
  std::vector<Survivor> all;
  for (size_t i = 0; i < 12; ++i) {
    auto result = (*corpus)->AddDocument(MakeDoc(i));
    ASSERT_TRUE(result.ok());
    all.push_back({result->doc_root, result->length, MakeDoc(i)});
  }
  for (size_t victim : {0u, 4u, 5u, 9u}) {
    ASSERT_TRUE((*corpus)->RemoveDocument(all[victim].root).ok());
  }
  std::vector<Survivor> survivors;  // holed (corpus) id space
  for (size_t i = 0; i < all.size(); ++i) {
    if (i != 0 && i != 4 && i != 5 && i != 9) survivors.push_back(all[i]);
  }

  // Fresh rebuild from only the survivors: compacted id space.
  std::vector<std::string> survivor_xml;
  for (const auto& survivor : survivors) {
    survivor_xml.push_back(survivor.xml);
  }
  auto oracle = engine::Database::BuildFromXml(survivor_xml, TestModel());
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  std::vector<Survivor> compacted = survivors;
  doc::NodeId next = 1;  // super-root is 0
  for (auto& survivor : compacted) {
    survivor.root = next;
    next += survivor.length;
  }

  auto snap = (*corpus)->snapshot();
  // The DocSpan mapping itself: first and last node of every surviving
  // document resolve to its root; answers never land in a hole.
  for (const auto& survivor : survivors) {
    EXPECT_EQ(snap->DocRootOf(survivor.root), survivor.root);
    EXPECT_EQ(snap->DocRootOf(survivor.root + survivor.length - 1),
              survivor.root);
  }

  for (const char* query : kQueries) {
    for (Strategy strategy : {Strategy::kSchema, Strategy::kDirect}) {
      for (size_t n : {static_cast<size_t>(3), SIZE_MAX}) {
        ExecOptions exec;
        exec.strategy = strategy;
        exec.n = n;
        auto got = snap->Execute(query, exec, ScatterOptions{});
        ASSERT_TRUE(got.ok()) << got.status();
        auto want = oracle->Execute(query, exec);
        ASSERT_TRUE(want.ok()) << want.status();
        ASSERT_EQ(got->size(), want->size())
            << query << " n=" << n
            << (strategy == Strategy::kSchema ? " schema" : " direct");
        for (size_t i = 0; i < got->size(); ++i) {
          EXPECT_EQ(
              Translate((*got)[i].root, (*got)[i].cost, survivors),
              Translate((*want)[i].root, (*want)[i].cost, compacted))
              << query << " answer " << i;
        }
      }
    }
  }
}

TEST_F(DocSpanHolesTest, HolesSurviveRecoveryIdentically) {
  ingest::MutableCorpus::Options options;
  options.data_dir = dir_;
  options.num_shards = 2;
  options.model = TestModel();

  std::vector<std::pair<doc::NodeId, cost::Cost>> before;
  {
    auto corpus = ingest::MutableCorpus::Open(options);
    ASSERT_TRUE(corpus.ok());
    std::vector<doc::NodeId> roots;
    for (size_t i = 0; i < 10; ++i) {
      auto result = (*corpus)->AddDocument(MakeDoc(i));
      ASSERT_TRUE(result.ok());
      roots.push_back(result->doc_root);
    }
    ASSERT_TRUE((*corpus)->RemoveDocument(roots[1]).ok());
    ASSERT_TRUE((*corpus)->RemoveDocument(roots[6]).ok());
    auto snap = (*corpus)->snapshot();
    ExecOptions exec;
    exec.n = SIZE_MAX;
    auto answers = snap->Execute(kQueries[0], exec, ScatterOptions{});
    ASSERT_TRUE(answers.ok());
    for (const auto& answer : *answers) {
      before.emplace_back(answer.root, answer.cost);
    }
    (*corpus)->Abandon();
  }
  auto recovered = ingest::MutableCorpus::Open(options);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  auto snap = (*recovered)->snapshot();
  ExecOptions exec;
  exec.n = SIZE_MAX;
  auto answers = snap->Execute(kQueries[0], exec, ScatterOptions{});
  ASSERT_TRUE(answers.ok());
  ASSERT_EQ(answers->size(), before.size());
  for (size_t i = 0; i < answers->size(); ++i) {
    EXPECT_EQ((*answers)[i].root, before[i].first) << "answer " << i;
    EXPECT_EQ((*answers)[i].cost, before[i].second) << "answer " << i;
  }
}

}  // namespace
}  // namespace approxql::shard
