// Hostile-input tests for LayoutManifest::Deserialize: claimed counts and
// lengths are validated against the remaining bytes before any allocation,
// and the span tables must satisfy the ShardedDatabase invariant (sorted,
// non-overlapping, 1-based, no uint32 overflow) that ToGlobal/DocRootOf
// binary-search under.

#include <cstdint>
#include <string>

#include "cost/cost_model.h"
#include "gtest/gtest.h"
#include "shard/layout_manifest.h"
#include "util/varint.h"

namespace approxql::shard {
namespace {

constexpr uint32_t kMagic = 0x41514c4d;  // must match layout_manifest.cc
constexpr uint64_t kHugeCount = uint64_t{1} << 40;

// Everything up to (and including) the cost-model text, shared by all the
// hostile bodies below.
std::string Preamble() {
  std::string out;
  util::PutVarint32(&out, kMagic);
  util::PutVarint32(&out, 1);   // version
  util::PutVarint32(&out, 42);  // fingerprint
  const std::string model = cost::CostModel().ToConfigString();
  util::PutVarint64(&out, model.size());
  out += model;
  return out;
}

void ExpectCorruption(const std::string& blob, std::string_view needle) {
  auto result = LayoutManifest::Deserialize(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(needle), std::string::npos)
      << result.status().message();
}

TEST(LayoutManifestHostileTest, HugeModelSize) {
  std::string blob;
  util::PutVarint32(&blob, kMagic);
  util::PutVarint32(&blob, 1);
  util::PutVarint32(&blob, 42);
  util::PutVarint64(&blob, kHugeCount);  // model text length, nothing follows
  ExpectCorruption(blob, "cost model overruns");
}

TEST(LayoutManifestHostileTest, HugeShardCount) {
  std::string blob = Preamble();
  util::PutVarint64(&blob, kHugeCount);  // shard count, no shards follow
  ExpectCorruption(blob, "shard count overruns");
}

TEST(LayoutManifestHostileTest, HugeSpanCount) {
  std::string blob = Preamble();
  util::PutVarint64(&blob, 1);           // one shard...
  util::PutVarint64(&blob, kHugeCount);  // ...claiming 2^40 spans
  ExpectCorruption(blob, "span count overruns");
}

TEST(LayoutManifestHostileTest, ZeroBasedSpanRejected) {
  std::string blob = Preamble();
  util::PutVarint64(&blob, 1);
  util::PutVarint64(&blob, 1);
  util::PutVarint32(&blob, 0);  // local_start 0 collides with the super-root
  util::PutVarint32(&blob, 1);
  util::PutVarint32(&blob, 4);
  ExpectCorruption(blob, "span out of range");
}

TEST(LayoutManifestHostileTest, ZeroLengthSpanRejected) {
  std::string blob = Preamble();
  util::PutVarint64(&blob, 1);
  util::PutVarint64(&blob, 1);
  util::PutVarint32(&blob, 1);
  util::PutVarint32(&blob, 1);
  util::PutVarint32(&blob, 0);  // empty span
  ExpectCorruption(blob, "span out of range");
}

TEST(LayoutManifestHostileTest, SpanIdOverflowRejected) {
  std::string blob = Preamble();
  util::PutVarint64(&blob, 1);
  util::PutVarint64(&blob, 1);
  util::PutVarint32(&blob, UINT32_MAX);  // local ids wrap past 2^32
  util::PutVarint32(&blob, 1);
  util::PutVarint32(&blob, 2);
  ExpectCorruption(blob, "span out of range");
}

TEST(LayoutManifestHostileTest, OverlappingSpansRejected) {
  std::string blob = Preamble();
  util::PutVarint64(&blob, 1);
  util::PutVarint64(&blob, 2);
  util::PutVarint32(&blob, 1);  // [1, 6) locally
  util::PutVarint32(&blob, 1);
  util::PutVarint32(&blob, 5);
  util::PutVarint32(&blob, 3);  // starts inside the previous span
  util::PutVarint32(&blob, 10);
  util::PutVarint32(&blob, 5);
  ExpectCorruption(blob, "overlap");
}

TEST(LayoutManifestHostileTest, RegressingGlobalSpansRejected) {
  std::string blob = Preamble();
  util::PutVarint64(&blob, 1);
  util::PutVarint64(&blob, 2);
  util::PutVarint32(&blob, 1);   // local [1, 6), global [10, 15)
  util::PutVarint32(&blob, 10);
  util::PutVarint32(&blob, 5);
  util::PutVarint32(&blob, 6);   // local fine, but global goes backwards
  util::PutVarint32(&blob, 2);
  util::PutVarint32(&blob, 5);
  ExpectCorruption(blob, "overlap");
}

// A well-formed manifest still round-trips after the hardening.
TEST(LayoutManifestHostileTest, ValidManifestRoundTrips) {
  std::vector<std::vector<DocSpan>> spans(2);
  spans[0].push_back({1, 1, 5});
  spans[0].push_back({6, 11, 3});
  spans[1].push_back({1, 6, 5});
  LayoutManifest manifest(7, cost::CostModel(), std::move(spans));
  auto result = LayoutManifest::Deserialize(manifest.Serialize());
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->fingerprint(), 7u);
  EXPECT_EQ(result->num_shards(), 2u);
  EXPECT_EQ(result->ToGlobal(0, 7), 12u);
  EXPECT_EQ(result->ToGlobal(1, 3), 8u);
}

}  // namespace
}  // namespace approxql::shard
