// Hostile-input tests for DeserializePosting: the claimed entry count is
// validated against the remaining bytes before reserve().

#include <cstdint>
#include <string>

#include "gtest/gtest.h"
#include "index/label_index.h"
#include "util/varint.h"

namespace approxql::index {
namespace {

TEST(PostingHostileTest, HugeCount) {
  std::string blob;
  util::PutVarint64(&blob, uint64_t{1} << 40);  // no deltas follow
  auto result = DeserializePosting(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("overruns"), std::string::npos)
      << result.status().message();
}

TEST(PostingHostileTest, CountJustPastPayload) {
  std::string blob;
  util::PutVarint64(&blob, 3);  // claims 3 deltas, supplies 2
  util::PutVarint32(&blob, 1);
  util::PutVarint32(&blob, 1);
  EXPECT_FALSE(DeserializePosting(blob).ok());
}

TEST(PostingHostileTest, DeltaOverflowRejected) {
  std::string blob;
  util::PutVarint64(&blob, 2);
  util::PutVarint32(&blob, UINT32_MAX);  // first id = UINT32_MAX
  util::PutVarint32(&blob, 2);           // wraps the 32-bit id space
  auto result = DeserializePosting(blob);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("overflows"), std::string::npos)
      << result.status().message();
}

TEST(PostingHostileTest, ValidPostingStillDecodes) {
  Posting posting = {1, 5, 9};
  std::string blob;
  SerializePosting(posting, &blob);
  auto result = DeserializePosting(blob);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, posting);
}

}  // namespace
}  // namespace approxql::index
