#include "index/stored_label_index.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "engine/direct_eval.h"
#include "query/expanded.h"
#include "storage/bptree.h"
#include "storage/mem_kv_store.h"
#include "util/varint.h"

namespace approxql::index {
namespace {

using doc::DataTree;
using doc::DataTreeBuilder;

DataTree BuildTree() {
  DataTreeBuilder builder;
  auto s = builder.AddDocumentXml(
      "<catalog>"
      "<cd><title>piano concerto</title><composer>rachmaninov</composer></cd>"
      "<cd><title>piano sonata</title></cd>"
      "</catalog>");
  EXPECT_TRUE(s.ok()) << s;
  auto tree = std::move(builder).Build(cost::CostModel());
  EXPECT_TRUE(tree.ok());
  return std::move(tree).value();
}

TEST(StoredLabelIndexTest, FetchMatchesInMemoryIndex) {
  DataTree tree = BuildTree();
  LabelIndex memory = LabelIndex::BuildFromTree(tree);
  storage::MemKvStore store;
  ASSERT_TRUE(memory.PersistTo(&store, "ix#").ok());
  StoredLabelIndex stored(&store, "ix#");

  for (NodeType type : {NodeType::kStruct, NodeType::kText}) {
    for (const auto& [label, posting] : memory.postings(type)) {
      const Posting* got = stored.Fetch(type, label);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, posting);
      // Second fetch hits the cache and returns the same pointer.
      EXPECT_EQ(stored.Fetch(type, label), got);
    }
  }
  EXPECT_EQ(stored.corrupt_fetches(), 0u);
}

TEST(StoredLabelIndexTest, UnknownLabelIsNegativeCached) {
  storage::MemKvStore store;
  StoredLabelIndex stored(&store, "ix#");
  EXPECT_EQ(stored.Fetch(NodeType::kStruct, 424242), nullptr);
  EXPECT_EQ(stored.Fetch(NodeType::kStruct, 424242), nullptr);
  EXPECT_EQ(stored.CachedCount(), 1u);
  EXPECT_EQ(stored.corrupt_fetches(), 0u);
}

TEST(StoredLabelIndexTest, CorruptPostingReported) {
  storage::MemKvStore store;
  std::string key = "ix#s";
  util::PutVarint32(&key, 7);
  ASSERT_TRUE(store.Put(key, "\xff\xff\xff").ok());  // bad varint stream
  StoredLabelIndex stored(&store, "ix#");
  EXPECT_EQ(stored.Fetch(NodeType::kStruct, 7), nullptr);
  EXPECT_EQ(stored.corrupt_fetches(), 1u);
}

TEST(StoredLabelIndexTest, LazyLoadingOnlyTouchesQueriedLabels) {
  DataTree tree = BuildTree();
  LabelIndex memory = LabelIndex::BuildFromTree(tree);
  storage::MemKvStore store;
  ASSERT_TRUE(memory.PersistTo(&store, "ix#").ok());
  StoredLabelIndex stored(&store, "ix#");
  doc::LabelId piano = tree.labels().Find("piano");
  ASSERT_NE(stored.Fetch(NodeType::kText, piano), nullptr);
  EXPECT_EQ(stored.CachedCount(), 1u);
}

TEST(StoredLabelIndexTest, DirectEvaluatorRunsOnStoredPostings) {
  DataTree tree = BuildTree();
  LabelIndex memory = LabelIndex::BuildFromTree(tree);

  // Through a real on-disk B+tree, not just the in-memory store.
  std::string path = (std::filesystem::temp_directory_path() /
                      ("approxql_stored_ix_" + std::to_string(::getpid())))
                         .string();
  std::filesystem::remove(path);
  {
    auto disk = storage::DiskKvStore::Open(path, true);
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE(memory.PersistTo(disk->get(), "ix#").ok());
    ASSERT_TRUE((*disk)->Flush().ok());
  }
  auto disk = storage::DiskKvStore::Open(path, false);
  ASSERT_TRUE(disk.ok());
  StoredLabelIndex stored(disk->get(), "ix#");

  auto q = query::Parse(R"(cd[title["piano" and "concerto"]])");
  ASSERT_TRUE(q.ok());
  auto expanded = query::ExpandedQuery::Build(*q, cost::CostModel());
  ASSERT_TRUE(expanded.ok());

  engine::DirectEvaluator from_store(engine::EncodedTree::Of(tree), stored,
                                     tree.labels());
  engine::DirectEvaluator from_memory(engine::EncodedTree::Of(tree), memory,
                                      tree.labels());
  auto a = from_store.BestN(*expanded, SIZE_MAX);
  auto b = from_memory.BestN(*expanded, SIZE_MAX);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].root, b[i].root);
    EXPECT_EQ(a[i].cost, b[i].cost);
  }
  EXPECT_GT(stored.CachedCount(), 0u);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace approxql::index
