#include "index/label_index.h"

#include <gtest/gtest.h>

#include "index/secondary_index.h"
#include "storage/mem_kv_store.h"
#include "util/varint.h"

namespace approxql::index {
namespace {

using doc::DataTree;
using doc::DataTreeBuilder;
using doc::NodeId;

DataTree BuildTree() {
  DataTreeBuilder builder;
  auto s = builder.AddDocumentXml(
      "<catalog>"
      "<cd><title>piano concerto</title><composer>rachmaninov</composer></cd>"
      "<cd><title>piano sonata</title></cd>"
      "</catalog>");
  EXPECT_TRUE(s.ok()) << s;
  auto tree = std::move(builder).Build(cost::CostModel());
  EXPECT_TRUE(tree.ok());
  return std::move(tree).value();
}

TEST(LabelIndexTest, BuildFromTreePostingsSortedAndComplete) {
  DataTree tree = BuildTree();
  LabelIndex index = LabelIndex::BuildFromTree(tree);

  doc::LabelId cd = tree.labels().Find("cd");
  ASSERT_NE(cd, doc::kInvalidLabel);
  const Posting* cds = index.Fetch(NodeType::kStruct, cd);
  ASSERT_NE(cds, nullptr);
  EXPECT_EQ(cds->size(), 2u);
  for (NodeId id : *cds) {
    EXPECT_EQ(tree.label(id), "cd");
    EXPECT_EQ(tree.node(id).type, NodeType::kStruct);
  }
  EXPECT_TRUE(std::is_sorted(cds->begin(), cds->end()));

  doc::LabelId piano = tree.labels().Find("piano");
  const Posting* pianos = index.Fetch(NodeType::kText, piano);
  ASSERT_NE(pianos, nullptr);
  EXPECT_EQ(pianos->size(), 2u);

  // Struct and text spaces are separate: "piano" as element name is absent.
  EXPECT_EQ(index.Fetch(NodeType::kStruct, piano), nullptr);
  // Unknown labels fetch nothing.
  EXPECT_EQ(index.Fetch(NodeType::kText, 999999), nullptr);
}

TEST(LabelIndexTest, SuperRootNotIndexed) {
  DataTree tree = BuildTree();
  LabelIndex index = LabelIndex::BuildFromTree(tree);
  doc::LabelId root_label = tree.labels().Find(doc::kSuperRootLabel);
  ASSERT_NE(root_label, doc::kInvalidLabel);
  EXPECT_EQ(index.Fetch(NodeType::kStruct, root_label), nullptr);
}

TEST(LabelIndexTest, EveryNonRootNodeIndexedExactlyOnce) {
  DataTree tree = BuildTree();
  LabelIndex index = LabelIndex::BuildFromTree(tree);
  size_t total = 0;
  for (NodeType type : {NodeType::kStruct, NodeType::kText}) {
    for (const auto& [label, posting] : index.postings(type)) {
      total += posting.size();
    }
  }
  EXPECT_EQ(total, tree.size() - 1);
}

TEST(PostingSerializationTest, RoundTrip) {
  Posting posting = {1, 5, 6, 100, 4000000, 4000001};
  std::string blob;
  SerializePosting(posting, &blob);
  auto restored = DeserializePosting(blob);
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(*restored, posting);
}

TEST(PostingSerializationTest, EmptyPosting) {
  Posting posting;
  std::string blob;
  SerializePosting(posting, &blob);
  auto restored = DeserializePosting(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(PostingSerializationTest, CorruptionRejected) {
  Posting posting = {3, 7, 20};
  std::string blob;
  SerializePosting(posting, &blob);
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    EXPECT_FALSE(DeserializePosting(blob.substr(0, cut)).ok()) << cut;
  }
  EXPECT_FALSE(DeserializePosting(blob + "\x01").ok());
  // A zero delta after the first entry means a duplicate node: corrupt.
  std::string dup;
  util::PutVarint64(&dup, 2);
  util::PutVarint32(&dup, 5);
  util::PutVarint32(&dup, 0);
  EXPECT_FALSE(DeserializePosting(dup).ok());
}

TEST(LabelIndexPersistTest, RoundTripThroughKvStore) {
  DataTree tree = BuildTree();
  LabelIndex index = LabelIndex::BuildFromTree(tree);
  storage::MemKvStore store;
  ASSERT_TRUE(index.PersistTo(&store, "ix#").ok());
  auto loaded = LabelIndex::LoadFrom(store, "ix#");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  for (NodeType type : {NodeType::kStruct, NodeType::kText}) {
    ASSERT_EQ(loaded->postings(type).size(), index.postings(type).size());
    for (const auto& [label, posting] : index.postings(type)) {
      const Posting* got = loaded->Fetch(type, label);
      ASSERT_NE(got, nullptr);
      EXPECT_EQ(*got, posting);
    }
  }
}

TEST(SecondaryIndexTest, AddFetchPersist) {
  SecondaryIndex sec;
  sec.Add(3, 7, 10);
  sec.Add(3, 7, 12);
  sec.Add(3, 8, 11);
  sec.Add(4, 7, 20);
  const Posting* p = sec.Fetch(3, 7);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(*p, (Posting{10, 12}));
  EXPECT_EQ(sec.Fetch(3, 9), nullptr);
  EXPECT_EQ(sec.Fetch(99, 7), nullptr);
  EXPECT_EQ(sec.KeyCount(), 3u);

  storage::MemKvStore store;
  ASSERT_TRUE(sec.PersistTo(&store, "sec#").ok());
  auto loaded = SecondaryIndex::LoadFrom(store, "sec#");
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->KeyCount(), 3u);
  ASSERT_NE(loaded->Fetch(4, 7), nullptr);
  EXPECT_EQ(*loaded->Fetch(4, 7), (Posting{20}));
}

}  // namespace
}  // namespace approxql::index
