#include "query/ast.h"

#include <gtest/gtest.h>

namespace approxql::query {
namespace {

TEST(QueryParserTest, BareName) {
  auto q = Parse("cd");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->root->kind, AstKind::kName);
  EXPECT_EQ(q->root->label, "cd");
  EXPECT_TRUE(q->root->children.empty());
}

TEST(QueryParserTest, PaperQuery) {
  auto q = Parse(
      R"(cd[title["piano" and "concerto"] and composer["rachmaninov"]])");
  ASSERT_TRUE(q.ok()) << q.status();
  const AstNode& cd = *q->root;
  EXPECT_EQ(cd.label, "cd");
  ASSERT_EQ(cd.children.size(), 1u);
  const AstNode& conj = *cd.children.front();
  ASSERT_EQ(conj.kind, AstKind::kAnd);
  ASSERT_EQ(conj.children.size(), 2u);
  const AstNode& title = *conj.children[0];
  EXPECT_EQ(title.label, "title");
  ASSERT_EQ(title.children.size(), 1u);
  const AstNode& title_conj = *title.children.front();
  ASSERT_EQ(title_conj.kind, AstKind::kAnd);
  ASSERT_EQ(title_conj.children.size(), 2u);
  EXPECT_EQ(title_conj.children[0]->kind, AstKind::kText);
  EXPECT_EQ(title_conj.children[0]->label, "piano");
  EXPECT_EQ(title_conj.children[1]->label, "concerto");
  const AstNode& composer = *conj.children[1];
  EXPECT_EQ(composer.label, "composer");
}

TEST(QueryParserTest, OrAndPrecedence) {
  // and binds tighter than or.
  auto q = Parse(R"(a["x" and "y" or "z"])");
  ASSERT_TRUE(q.ok()) << q.status();
  const AstNode& expr = *q->root->children.front();
  ASSERT_EQ(expr.kind, AstKind::kOr);
  ASSERT_EQ(expr.children.size(), 2u);
  EXPECT_EQ(expr.children[0]->kind, AstKind::kAnd);
  EXPECT_EQ(expr.children[1]->kind, AstKind::kText);
  EXPECT_EQ(expr.children[1]->label, "z");
}

TEST(QueryParserTest, ParenthesesOverridePrecedence) {
  auto q = Parse(R"(a["x" and ("y" or "z")])");
  ASSERT_TRUE(q.ok()) << q.status();
  const AstNode& expr = *q->root->children.front();
  ASSERT_EQ(expr.kind, AstKind::kAnd);
  ASSERT_EQ(expr.children.size(), 2u);
  EXPECT_EQ(expr.children[1]->kind, AstKind::kOr);
}

TEST(QueryParserTest, NaryOperatorsFlatten) {
  auto q = Parse(R"(a["x" and "y" and "z" and "w"])");
  ASSERT_TRUE(q.ok());
  const AstNode& expr = *q->root->children.front();
  ASSERT_EQ(expr.kind, AstKind::kAnd);
  EXPECT_EQ(expr.children.size(), 4u);
}

TEST(QueryParserTest, MultiWordTextBecomesConjunction) {
  auto q = Parse(R"(cd[title["piano concerto"]])");
  ASSERT_TRUE(q.ok()) << q.status();
  const AstNode& title = *q->root->children.front();
  const AstNode& conj = *title.children.front();
  ASSERT_EQ(conj.kind, AstKind::kAnd);
  ASSERT_EQ(conj.children.size(), 2u);
  EXPECT_EQ(conj.children[0]->label, "piano");
  EXPECT_EQ(conj.children[1]->label, "concerto");
}

TEST(QueryParserTest, TextIsLowercasedAndTokenized) {
  auto q = Parse(R"(a["Piano-Concerto No.2"])");
  ASSERT_TRUE(q.ok());
  const AstNode& conj = *q->root->children.front();
  ASSERT_EQ(conj.kind, AstKind::kAnd);
  ASSERT_EQ(conj.children.size(), 4u);
  EXPECT_EQ(conj.children[0]->label, "piano");
  EXPECT_EQ(conj.children[1]->label, "concerto");
  EXPECT_EQ(conj.children[2]->label, "no");
  EXPECT_EQ(conj.children[3]->label, "2");
}

TEST(QueryParserTest, SingleQuotesAndPaperTypography) {
  // The paper's text renders the opening quote as '' — both accepted.
  auto q1 = Parse("cd[title['piano']]");
  ASSERT_TRUE(q1.ok()) << q1.status();
  auto q2 = Parse("cd[title[''piano']]");
  ASSERT_TRUE(q2.ok()) << q2.status();
  EXPECT_TRUE(AstEquals(*q1->root, *q2->root));
}

TEST(QueryParserTest, NestedSelectors) {
  auto q = Parse(R"(a[b[c[d["w"]]]])");
  ASSERT_TRUE(q.ok());
  const AstNode* cursor = q->root.get();
  for (const char* name : {"a", "b", "c", "d"}) {
    EXPECT_EQ(cursor->label, name);
    ASSERT_LE(cursor->children.size(), 1u);
    if (!cursor->children.empty()) cursor = cursor->children.front().get();
  }
  EXPECT_EQ(cursor->kind, AstKind::kText);
}

TEST(QueryParserTest, MixedStructAndTextOperands) {
  auto q = Parse(R"(cd[title and "x"])");
  ASSERT_TRUE(q.ok());
  const AstNode& conj = *q->root->children.front();
  EXPECT_EQ(conj.children[0]->kind, AstKind::kName);
  EXPECT_EQ(conj.children[1]->kind, AstKind::kText);
}

TEST(QueryParserTest, WhitespaceInsensitive) {
  auto q1 = Parse("  cd [ title [ \"x\"  and  \"y\" ] ]  ");
  auto q2 = Parse("cd[title[\"x\" and \"y\"]]");
  ASSERT_TRUE(q1.ok()) << q1.status();
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(AstEquals(*q1->root, *q2->root));
}

TEST(QueryParserTest, ToStringRoundTrips) {
  for (const char* text : {
           "cd",
           "cd[title[\"piano\" and \"concerto\"] and "
           "composer[\"rachmaninov\"]]",
           "a[\"x\" and (\"y\" or \"z\")]",
           "a[(\"x\" and \"y\") or \"z\"]",
           "a[b and c[\"w\"]]",
           "a[\"x\" or \"y\" or \"z\"]",
       }) {
    auto q = Parse(text);
    ASSERT_TRUE(q.ok()) << text << ": " << q.status();
    std::string printed = q->ToString();
    auto reparsed = Parse(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_TRUE(AstEquals(*q->root, *reparsed->root))
        << text << " -> " << printed;
  }
}

TEST(QueryParserTest, SelectorAndOrCounts) {
  auto q = Parse(
      R"(cd[title["piano" and ("concerto" or "sonata")] and )"
      R"((composer["rachmaninov"] or performer["ashkenazy"])])");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(SelectorCount(*q->root), 9u);
  EXPECT_EQ(OrCount(*q->root), 2u);
}

// --- failure injection ---

TEST(QueryParserErrorTest, Rejections) {
  for (const char* text : {
           "",                    // empty
           "[x]",                 // no root name
           "\"text\"",            // root must be a name selector
           "cd[",                 // unterminated bracket
           "cd[]",                // empty bracket
           "cd[\"x\" and ]",      // dangling operator
           "cd[\"x\" or]",        // dangling operator
           "cd[and \"x\"]",       // leading operator
           "cd[\"x\"] extra",     // trailing input
           "cd[\"unterminated]",  // unterminated text
           "cd[(\"x\" and \"y\"]",  // unbalanced paren
           "cd[\"  \"]",          // no words in text
           "and",                 // reserved word as name
           "or[x]",               // reserved word as name
       }) {
    auto q = Parse(text);
    EXPECT_FALSE(q.ok()) << "should reject: " << text;
    EXPECT_TRUE(q.status().IsParseError()) << text;
  }
}

TEST(QueryParserErrorTest, ErrorCarriesOffset) {
  auto q = Parse("cd[title[\"x\"] and ]");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("offset"), std::string::npos);
}

}  // namespace
}  // namespace approxql::query
