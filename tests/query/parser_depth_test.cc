// Depth-limit tests for the ApproxQL parser: query strings arrive over the
// wire, so "a[a[a[…" and "(((…" must hit a parse error at the nesting cap
// instead of exhausting the call stack.

#include <string>

#include "gtest/gtest.h"
#include "query/ast.h"

namespace approxql::query {
namespace {

std::string NestedBrackets(int depth) {
  std::string text = "a";
  for (int i = 0; i < depth; ++i) text += "[a";
  text.append(static_cast<size_t>(depth), ']');
  return text;
}

TEST(ParserDepthTest, DeepButLegalBracketsParse) {
  auto result = Parse(NestedBrackets(64));
  ASSERT_TRUE(result.ok()) << result.status().message();
}

TEST(ParserDepthTest, BracketNestingPastLimitRejected) {
  auto result = Parse(NestedBrackets(65));
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("depth limit"), std::string::npos)
      << result.status().message();
}

TEST(ParserDepthTest, HostileUnclosedBracketsRejected) {
  // No closing brackets at all: the error must fire at the cap, well
  // before the recursion could chew through the stack.
  std::string text = "a";
  for (int i = 0; i < 100000; ++i) text += "[a";
  EXPECT_FALSE(Parse(text).ok());
}

TEST(ParserDepthTest, HostileParenNestingRejected) {
  std::string text = "a[";
  text.append(100000, '(');
  text += "\"w\"";
  text.append(100000, ')');
  text += "]";
  auto result = Parse(text);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("depth limit"), std::string::npos)
      << result.status().message();
}

std::string MixedNesting(int pairs) {
  // Each "a[(" contributes two nesting levels (bracket + paren).
  std::string text;
  for (int i = 0; i < pairs; ++i) text += "a[(";
  text += "\"w\"";
  for (int i = 0; i < pairs; ++i) text += ")]";
  return text;
}

TEST(ParserDepthTest, MixedNestingCountsBothSites) {
  ASSERT_TRUE(Parse(MixedNesting(32)).ok());  // 64 levels: at the cap
  auto result = Parse(MixedNesting(33));      // 66 levels: past it
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("depth limit"), std::string::npos)
      << result.status().message();
}

// Wide queries (many siblings, no nesting) stay legal — the cap is on
// depth only.
TEST(ParserDepthTest, WideConjunctionUnaffected) {
  std::string text = "a[\"w0\"";
  for (int i = 1; i < 500; ++i) {
    text += " and \"w" + std::to_string(i) + "\"";
  }
  text += "]";
  auto result = Parse(text);
  ASSERT_TRUE(result.ok()) << result.status().message();
}

}  // namespace
}  // namespace approxql::query
