#include "query/expanded.h"

#include <gtest/gtest.h>

#include "cost/cost_model.h"

namespace approxql::query {
namespace {

using cost::CostModel;

CostModel PaperCosts() {
  auto model = CostModel::ParseConfig(
      "insert struct category 4\n"
      "insert struct cd 2\n"
      "insert struct composer 5\n"
      "insert struct performer 5\n"
      "insert struct title 3\n"
      "delete struct composer 7\n"
      "delete text concerto 6\n"
      "delete text piano 8\n"
      "delete struct title 5\n"
      "delete struct track 3\n"
      "rename struct cd dvd 6\n"
      "rename struct cd mc 4\n"
      "rename struct composer performer 4\n"
      "rename text concerto sonata 3\n"
      "rename struct title category 4\n");
  EXPECT_TRUE(model.ok()) << model.status();
  return std::move(model).value();
}

ExpandedQuery Build(const char* text, const CostModel& model) {
  auto q = Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  auto expanded = ExpandedQuery::Build(*q, model);
  EXPECT_TRUE(expanded.ok()) << expanded.status();
  return std::move(expanded).value();
}

TEST(ExpandedQueryTest, SimplePathStructure) {
  CostModel model;  // no deletions/renamings allowed
  ExpandedQuery eq = Build(R"(cd[title["piano"]])", model);
  const ExpandedNode* root = eq.root();
  ASSERT_EQ(root->rep, RepType::kNode);
  EXPECT_TRUE(root->is_root);
  EXPECT_EQ(root->label, "cd");
  EXPECT_TRUE(root->renamings.empty());
  // No deletion bridges without finite delete costs.
  const ExpandedNode* title = root->left;
  ASSERT_EQ(title->rep, RepType::kNode);
  EXPECT_EQ(title->label, "title");
  const ExpandedNode* piano = title->left;
  ASSERT_EQ(piano->rep, RepType::kLeaf);
  EXPECT_EQ(piano->type, NodeType::kText);
  EXPECT_FALSE(cost::IsFinite(piano->delcost));
}

TEST(ExpandedQueryTest, PaperFigure2Shape) {
  ExpandedQuery eq = Build(
      R"(cd[track[title["piano" and "concerto"]] and )"
      R"(composer["rachmaninov"]])",
      PaperCosts());
  const ExpandedNode* root = eq.root();
  ASSERT_EQ(root->rep, RepType::kNode);
  EXPECT_EQ(root->label, "cd");
  ASSERT_EQ(root->renamings.size(), 2u);  // dvd, mc
  // Root child: and(track-part, composer-part).
  const ExpandedNode* conj = root->left;
  ASSERT_EQ(conj->rep, RepType::kAnd);
  // track is deletable -> or-bridge with edgecost 3.
  const ExpandedNode* track_bridge = conj->left;
  ASSERT_EQ(track_bridge->rep, RepType::kOr);
  EXPECT_EQ(track_bridge->edgecost, 3);
  const ExpandedNode* track = track_bridge->left;
  ASSERT_EQ(track->rep, RepType::kNode);
  EXPECT_EQ(track->label, "track");
  // The bridge's right edge shares the track node's child (DAG).
  const ExpandedNode* title_bridge = track->left;
  EXPECT_EQ(track_bridge->right, title_bridge)
      << "deletion bridge must share the child subtree";
  ASSERT_EQ(title_bridge->rep, RepType::kOr);
  EXPECT_EQ(title_bridge->edgecost, 5);  // delete title
  const ExpandedNode* title = title_bridge->left;
  EXPECT_EQ(title->label, "title");
  ASSERT_EQ(title->renamings.size(), 1u);
  EXPECT_EQ(title->renamings[0].to, "category");
  // Leaves carry renamings and delete costs.
  const ExpandedNode* leaves = title->left;
  ASSERT_EQ(leaves->rep, RepType::kAnd);
  const ExpandedNode* piano = leaves->left;
  EXPECT_EQ(piano->label, "piano");
  EXPECT_EQ(piano->delcost, 8);
  const ExpandedNode* concerto = leaves->right;
  EXPECT_EQ(concerto->label, "concerto");
  EXPECT_EQ(concerto->delcost, 6);
  ASSERT_EQ(concerto->renamings.size(), 1u);
  EXPECT_EQ(concerto->renamings[0].to, "sonata");
  EXPECT_EQ(concerto->renamings[0].cost, 3);
  // composer side: deletable, renamable.
  const ExpandedNode* composer_bridge = conj->right;
  ASSERT_EQ(composer_bridge->rep, RepType::kOr);
  EXPECT_EQ(composer_bridge->edgecost, 7);
  const ExpandedNode* composer = composer_bridge->left;
  EXPECT_EQ(composer->label, "composer");
  ASSERT_EQ(composer->renamings.size(), 1u);
  EXPECT_EQ(composer->renamings[0].to, "performer");
}

TEST(ExpandedQueryTest, RootIsNeverDeletableOrBridged) {
  CostModel model;
  model.SetDeleteCost(NodeType::kStruct, "cd", 1);
  ExpandedQuery eq = Build(R"(cd[title["x"]])", model);
  EXPECT_EQ(eq.root()->rep, RepType::kNode);
  EXPECT_TRUE(eq.root()->is_root);
}

TEST(ExpandedQueryTest, QueryOrHasZeroEdgeCost) {
  CostModel model;
  ExpandedQuery eq = Build(R"(a["x" or "y"])", model);
  const ExpandedNode* disj = eq.root()->left;
  ASSERT_EQ(disj->rep, RepType::kOr);
  EXPECT_EQ(disj->edgecost, 0);
}

TEST(ExpandedQueryTest, StructLeafGetsLeafRep) {
  CostModel model;
  model.SetDeleteCost(NodeType::kStruct, "bonus", 2);
  ExpandedQuery eq = Build(R"(cd[title["x"] and bonus])", model);
  const ExpandedNode* conj = eq.root()->left;
  const ExpandedNode* bonus = conj->right;
  ASSERT_EQ(bonus->rep, RepType::kLeaf);
  EXPECT_EQ(bonus->type, NodeType::kStruct);
  EXPECT_EQ(bonus->delcost, 2);
}

TEST(ExpandedQueryTest, BareRootHasNoChild) {
  CostModel model;
  ExpandedQuery eq = Build("cd", model);
  EXPECT_EQ(eq.root()->rep, RepType::kNode);
  EXPECT_EQ(eq.root()->left, nullptr);
  EXPECT_TRUE(eq.root()->is_root);
}

TEST(ExpandedQueryTest, NaryAndBinarizes) {
  CostModel model;
  ExpandedQuery eq = Build(R"(a["x" and "y" and "z"])", model);
  const ExpandedNode* top = eq.root()->left;
  ASSERT_EQ(top->rep, RepType::kAnd);
  ASSERT_EQ(top->left->rep, RepType::kAnd);
  EXPECT_EQ(top->right->label, "z");
  EXPECT_EQ(top->left->left->label, "x");
  EXPECT_EQ(top->left->right->label, "y");
}

TEST(ExpandedQueryTest, SemiTransformedCountSimple) {
  CostModel model;
  // No transformations allowed: exactly one semi-transformed query.
  ExpandedQuery eq = Build(R"(cd[title["piano"]])", model);
  EXPECT_EQ(eq.SemiTransformedCount(), 1u);

  // One renaming on the leaf: two.
  model.SetRenameCost(NodeType::kText, "piano", "violin", 2);
  ExpandedQuery eq2 = Build(R"(cd[title["piano"]])", model);
  EXPECT_EQ(eq2.SemiTransformedCount(), 2u);

  // Title deletable: doubles the title part (kept or bridged).
  model.SetDeleteCost(NodeType::kStruct, "title", 5);
  ExpandedQuery eq3 = Build(R"(cd[title["piano"]])", model);
  EXPECT_EQ(eq3.SemiTransformedCount(), 4u);
}

TEST(ExpandedQueryTest, ToDotMentionsEveryVertex) {
  ExpandedQuery eq = Build(
      R"(cd[track[title["piano" and "concerto"]] and )"
      R"(composer["rachmaninov"]])",
      PaperCosts());
  std::string dot = eq.ToDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("cd"), std::string::npos);
  EXPECT_NE(dot.find("sonata"), std::string::npos);
  for (size_t i = 0; i < eq.node_count(); ++i) {
    EXPECT_NE(dot.find("n" + std::to_string(i) + " "), std::string::npos);
  }
}

TEST(ExpandedQueryTest, RejectsNonNameRoot) {
  // The parser already enforces this; Build double-checks.
  Query q;
  q.root = std::make_unique<AstNode>();
  q.root->kind = AstKind::kText;
  q.root->label = "word";
  auto expanded = ExpandedQuery::Build(q, CostModel());
  EXPECT_FALSE(expanded.ok());
}

}  // namespace
}  // namespace approxql::query
