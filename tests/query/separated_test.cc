#include "query/separated.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace approxql::query {
namespace {

std::set<std::string> ExpandToStrings(const char* text,
                                      size_t max_queries = 4096) {
  auto q = Parse(text);
  EXPECT_TRUE(q.ok()) << q.status();
  auto separated = SeparatedRepresentation(*q, max_queries);
  EXPECT_TRUE(separated.ok()) << separated.status();
  std::set<std::string> out;
  for (const auto& cq : *separated) out.insert(cq.ToString());
  return out;
}

TEST(SeparatedTest, ConjunctiveQueryIsItself) {
  auto queries = ExpandToStrings(
      R"(cd[title["piano" and "concerto"] and composer["rachmaninov"]])");
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(*queries.begin(),
            "cd[title[\"piano\" and \"concerto\"] and "
            "composer[\"rachmaninov\"]]");
}

TEST(SeparatedTest, PaperSection3Example) {
  // Two "or"s -> 2^2 = 4 conjunctive queries, exactly the paper's set.
  auto queries = ExpandToStrings(
      R"(cd[title["piano" and ("concerto" or "sonata")] and )"
      R"((composer["rachmaninov"] or performer["ashkenazy"])])");
  std::set<std::string> expected = {
      R"(cd[title["piano" and "concerto"] and composer["rachmaninov"]])",
      R"(cd[title["piano" and "concerto"] and performer["ashkenazy"]])",
      R"(cd[title["piano" and "sonata"] and composer["rachmaninov"]])",
      R"(cd[title["piano" and "sonata"] and performer["ashkenazy"]])",
  };
  EXPECT_EQ(queries, expected);
}

TEST(SeparatedTest, OrOfStructSelectors) {
  auto queries = ExpandToStrings(R"(a[b["x"] or c["y"]])");
  std::set<std::string> expected = {R"(a[b["x"]])", R"(a[c["y"]])"};
  EXPECT_EQ(queries, expected);
}

TEST(SeparatedTest, NestedOrMultiplies) {
  auto queries =
      ExpandToStrings(R"(a[("x" or "y") and ("u" or "v") and ("p" or "q")])");
  EXPECT_EQ(queries.size(), 8u);
}

TEST(SeparatedTest, OrInsideNestedSelector) {
  auto queries = ExpandToStrings(R"(a[b[c["x" or "y"]]])");
  std::set<std::string> expected = {R"(a[b[c["x"]]])", R"(a[b[c["y"]]])"};
  EXPECT_EQ(queries, expected);
}

TEST(SeparatedTest, BareNameSingleton) {
  auto queries = ExpandToStrings("cd");
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(*queries.begin(), "cd");
}

TEST(SeparatedTest, LimitEnforced) {
  auto q = Parse(
      R"(a[("a" or "b") and ("c" or "d") and ("e" or "f") and ("g" or "h")])");
  ASSERT_TRUE(q.ok());
  auto separated = SeparatedRepresentation(*q, /*max_queries=*/8);
  ASSERT_FALSE(separated.ok());
  EXPECT_EQ(separated.status().code(), util::StatusCode::kOutOfRange);
  auto ok = SeparatedRepresentation(*q, /*max_queries=*/16);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->size(), 16u);
}

TEST(SeparatedTest, CloneIsDeep) {
  auto q = Parse(R"(a[b["x"]])");
  ASSERT_TRUE(q.ok());
  auto separated = SeparatedRepresentation(*q);
  ASSERT_TRUE(separated.ok());
  auto clone = (*separated)[0].root->Clone();
  (*separated)[0].root->children.front()->label = "mutated";
  EXPECT_EQ(clone->children.front()->label, "b");
}

}  // namespace
}  // namespace approxql::query
