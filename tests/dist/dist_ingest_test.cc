// ShardRouter::Ingest against real mutable shard servers over TCP
// loopback: adds are placed on the shard the router has sent the
// fewest documents (ties to the lowest index), removes probe each
// shard in index order until one claims the document, and the ingest
// counters surface in DumpMetrics. The router's manifest only needs a
// matching shard COUNT for ingest — ingest acks carry no layout
// fingerprint (the mutable layout moves with every mutation), which is
// exactly why Execute() over a mutated corpus stays out of scope here.
#include "dist/shard_router.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "ingest/mutable_corpus.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "shard/sharded_database.h"

namespace approxql::dist {
namespace {

using ingest::MutableCorpus;
using net::Server;
using net::ServerOptions;
using net::WireIngest;
using service::QueryService;
using service::ServiceOptions;
using shard::ShardedDatabase;

cost::CostModel TestModel() {
  cost::CostModel model;
  for (int i = 0; i < 10; ++i) {
    model.SetDeleteCost(NodeType::kStruct, "elem" + std::to_string(i),
                        static_cast<cost::Cost>(2 + (i * 3) % 7));
    model.SetDeleteCost(NodeType::kText, "term" + std::to_string(i),
                        static_cast<cost::Cost>(1 + (i * 5) % 6));
  }
  return model;
}

std::string MakeDoc(size_t i) {
  const std::string a = "elem" + std::to_string(i % 5);
  const std::string t = "term" + std::to_string(i % 7);
  return "<" + a + "><elem3>" + t + "</elem3></" + a + ">";
}

/// One mutable shard-server process-equivalent: its own single-shard
/// MutableCorpus in its own directory, served over loopback.
struct MutableServer {
  std::unique_ptr<MutableCorpus> corpus;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  uint16_t port() const { return server->port(); }
  void Stop() {
    if (server) server->Shutdown(/*drain=*/false);
    server.reset();
    service.reset();
    corpus.reset();
  }
};

class DistIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("approxql_dist_ingest_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    router_.reset();
    for (auto& server : servers_) server.Stop();
    servers_.clear();
    std::filesystem::remove_all(dir_);
  }

  void StartCluster(size_t num_servers) {
    for (size_t i = 0; i < num_servers; ++i) {
      MutableCorpus::Options options;
      options.data_dir = dir_ + "/node" + std::to_string(i);
      options.num_shards = 1;
      options.model = TestModel();
      auto corpus = MutableCorpus::Open(std::move(options));
      ASSERT_TRUE(corpus.ok()) << corpus.status();
      MutableServer node;
      node.corpus = std::move(corpus).value();
      node.service = std::make_unique<QueryService>(
          *node.corpus, ServiceOptions{.num_threads = 1});
      node.server = std::make_unique<Server>(*node.service, *node.corpus,
                                             ServerOptions{});
      ASSERT_TRUE(node.server->Start().ok());
      servers_.push_back(std::move(node));
    }
    // The router only needs a layout with the right shard count to
    // carry ingest; build a minimal static one.
    std::vector<std::string> seed_docs;
    for (size_t i = 0; i < num_servers; ++i) seed_docs.push_back(MakeDoc(i));
    auto layout =
        ShardedDatabase::BuildFromXml(seed_docs, TestModel(), num_servers);
    ASSERT_TRUE(layout.ok()) << layout.status();
    RouterOptions options;
    for (const auto& server : servers_) {
      options.shards.push_back({"127.0.0.1", server.port()});
    }
    options.connect_timeout_ms = 500;
    options.attempt_deadline_ms = 2000;
    options.max_retries = 0;
    options.health_period_ms = 0;
    router_ = std::make_unique<ShardRouter>(*layout, std::move(options));
    ASSERT_TRUE(router_->Start().ok());
  }

  std::string dir_;
  std::vector<MutableServer> servers_;
  std::unique_ptr<ShardRouter> router_;
};

TEST_F(DistIngestTest, AddsBalanceAcrossShardsLeastLoadedFirst) {
  StartCluster(2);
  for (size_t i = 0; i < 8; ++i) {
    WireIngest op;
    op.op = WireIngest::Op::kAdd;
    op.xml = MakeDoc(i);
    auto ack = router_->Ingest(op, /*deadline_ms=*/5000);
    ASSERT_TRUE(ack.ok()) << ack.status();
  }
  // Single-shard servers always report shard_index 0 in the ack; the
  // real placement is which SERVER got the document. Argmin with
  // ties-to-lowest alternates 0,1,0,1,... so the documents split 4/4.
  EXPECT_EQ(servers_[0].corpus->document_count(), 4u);
  EXPECT_EQ(servers_[1].corpus->document_count(), 4u);

  const std::string dump = router_->DumpMetrics();
  EXPECT_NE(dump.find("dist_ingest_calls"), std::string::npos);
  EXPECT_NE(dump.find("dist_shard_0_ingested 4"), std::string::npos) << dump;
  EXPECT_NE(dump.find("dist_shard_1_ingested 4"), std::string::npos) << dump;
}

TEST_F(DistIngestTest, RemovesProbeShardsInIndexOrder) {
  StartCluster(2);
  // Four adds: servers 0 and 1 each hold two documents whose LOCAL
  // root ids are 1 and (1 + len of the first doc).
  std::vector<doc::NodeId> roots;
  std::vector<uint32_t> owners;
  for (size_t i = 0; i < 4; ++i) {
    WireIngest op;
    op.op = WireIngest::Op::kAdd;
    op.xml = MakeDoc(i);
    auto ack = router_->Ingest(op, 5000);
    ASSERT_TRUE(ack.ok()) << ack.status();
    roots.push_back(ack->doc_root);
  }
  // Remove by the SECOND document's root id. Both servers have a
  // document with that local id — the router probes index order, so
  // server 0's copy is the one removed (documented try-each semantics:
  // root ids are per-server on a mutable cluster).
  WireIngest remove;
  remove.op = WireIngest::Op::kRemove;
  remove.doc_root = roots[2];  // third add = second doc on server 0
  auto ack = router_->Ingest(remove, 5000);
  ASSERT_TRUE(ack.ok()) << ack.status();
  EXPECT_EQ(servers_[0].corpus->document_count(), 1u);
  EXPECT_EQ(servers_[1].corpus->document_count(), 2u);

  // A root id no server has: NOT_FOUND after probing everyone.
  WireIngest missing;
  missing.op = WireIngest::Op::kRemove;
  missing.doc_root = 999999;
  auto not_found = router_->Ingest(missing, 5000);
  ASSERT_FALSE(not_found.ok());
  EXPECT_TRUE(not_found.status().IsNotFound()) << not_found.status();
}

TEST_F(DistIngestTest, DeadShardFailsTheAddCleanly) {
  StartCluster(2);
  // First two adds land one per server; then server 0 dies. The next
  // add deterministically targets it (count tie, lowest index wins): a
  // transport failure must come back as an error, never be silently
  // rerouted — the mutation may have landed, so resending elsewhere
  // could duplicate it. In-doubt semantics forbid failover by design,
  // so repeat calls keep failing until the shard returns.
  for (size_t i = 0; i < 2; ++i) {
    WireIngest op;
    op.op = WireIngest::Op::kAdd;
    op.xml = MakeDoc(i);
    ASSERT_TRUE(router_->Ingest(op, 5000).ok());
  }
  servers_[0].Stop();
  WireIngest op;
  op.op = WireIngest::Op::kAdd;
  op.xml = MakeDoc(2);
  auto failed = router_->Ingest(op, 2000);
  ASSERT_FALSE(failed.ok());
  auto again = router_->Ingest(op, 2000);
  EXPECT_FALSE(again.ok());
  EXPECT_EQ(servers_[1].corpus->document_count(), 1u);
}

}  // namespace
}  // namespace approxql::dist
