// The distributed tier's contract, proved over real TCP loopback:
//
//   1. EQUIVALENCE — remote scatter-gather through ShardRouter answers
//      every query bit-identically to the single in-process Database
//      (and therefore to in-process ShardedDatabase, whose own
//      equivalence tests/shard/ already pins), at 1/2/4 shard servers,
//      both strategies, with the shared cost bound riding the wire.
//
//   2. DEGRADATION — with one of four shard servers down, every answer
//      is explicitly degraded with the correct missing_shards, is
//      NEVER cached (a repeat re-asks the cluster), and strict mode
//      fails fast with kUnavailable. All shards down is kUnavailable
//      in every mode.
//
//   3. HEALTH — query/ping failures walk UP -> SUSPECT -> DOWN; a DOWN
//      shard is skipped without burning its timeout; a restarted
//      server is revived by the health probe.
//
//   4. TOPOLOGY — a shard server stamped with a different layout
//      fingerprint is rejected (kInternal), never silently
//      mistranslated.
#include "dist/shard_router.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"
#include "net/server.h"
#include "service/query_service.h"
#include "shard/layout_manifest.h"
#include "shard/sharded_database.h"

namespace approxql::dist {
namespace {

using engine::Database;
using engine::ExecOptions;
using engine::QueryAnswer;
using engine::Strategy;
using net::Server;
using net::ServerOptions;
using service::QueryRequest;
using service::QueryResponse;
using service::QueryService;
using service::ServiceOptions;
using shard::ShardedDatabase;

Database MakeSyntheticDb() {
  gen::XmlGenOptions options;
  options.seed = 20020314;
  options.total_elements = 3000;
  options.vocabulary = 600;
  gen::XmlGenerator generator(options);
  cost::CostModel model;
  auto tree = generator.GenerateTree(model);
  APPROXQL_CHECK(tree.ok()) << tree.status();
  auto db = Database::FromDataTree(std::move(tree).value(), model);
  APPROXQL_CHECK(db.ok()) << db.status();
  return std::move(db).value();
}

std::vector<std::string> MakeQueries(const Database& db) {
  gen::QueryGenOptions options;
  options.seed = 4242;
  options.renamings_per_label = 3;
  gen::QueryGenerator generator(db, options);
  std::vector<std::string> queries;
  constexpr std::string_view kPatterns[] = {gen::kPattern1, gen::kPattern2,
                                            gen::kPattern3};
  for (size_t i = 0; i < 8; ++i) {
    auto generated = generator.Generate(kPatterns[i % 3]);
    APPROXQL_CHECK(generated.ok()) << generated.status();
    queries.push_back(std::move(generated->text));
  }
  return queries;
}

std::string Canonical(const std::vector<QueryAnswer>& answers) {
  std::string out;
  for (const auto& answer : answers) {
    out += std::to_string(answer.root) + ":" + std::to_string(answer.cost) +
           ";";
  }
  return out;
}

/// One shard server process-equivalent: its own QueryService over one
/// shard's Database, fronted by a net::Server in shard-serving mode.
struct ShardServer {
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  uint16_t port() const { return server->port(); }
  void Stop() {
    if (server) server->Shutdown(/*drain=*/false);
    server.reset();
    service.reset();
  }
};

ShardServer StartShardServer(const ShardedDatabase& sharded, size_t index,
                             uint16_t port = 0, uint32_t fingerprint = 0) {
  ShardServer s;
  s.service = std::make_unique<QueryService>(sharded.shard(index),
                                             ServiceOptions{.num_threads = 2});
  ServerOptions options;
  options.port = port;
  options.shard.enabled = true;
  options.shard.fingerprint =
      fingerprint != 0 ? fingerprint : sharded.LayoutFingerprint();
  options.shard.shard_index = static_cast<uint32_t>(index);
  s.server =
      std::make_unique<Server>(*s.service, sharded.shard(index), options);
  auto started = s.server->Start();
  APPROXQL_CHECK(started.ok()) << started;
  return s;
}

RouterOptions FastFailOptions(const std::vector<ShardServer>& servers) {
  RouterOptions options;
  for (const ShardServer& s : servers) {
    options.shards.push_back({"127.0.0.1", s.port()});
  }
  options.connect_timeout_ms = 500;
  // Short enough that a dead endpoint (whose requests wait out the
  // attempt deadline — connection-refused leaves them queued for the
  // next connect) fails in test time, long enough for a live TSan-built
  // shard to answer well within one attempt.
  options.attempt_deadline_ms = 400;
  options.max_retries = 1;
  options.retry_backoff_ms = 5;
  options.retry_backoff_cap_ms = 20;
  options.health_period_ms = 0;  // deterministic: no background probes
  return options;
}

class DistRouterTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database(MakeSyntheticDb());
    queries_ = new std::vector<std::string>(MakeQueries(*db_));
  }
  static void TearDownTestSuite() {
    delete queries_;
    queries_ = nullptr;
    delete db_;
    db_ = nullptr;
  }

  static ShardedDatabase MakeSharded(size_t num_shards) {
    auto sharded =
        ShardedDatabase::Partition(db_->tree(), db_->cost_model(), num_shards);
    APPROXQL_CHECK(sharded.ok()) << sharded.status();
    return std::move(sharded).value();
  }

  static std::vector<ShardServer> StartCluster(const ShardedDatabase& sharded) {
    std::vector<ShardServer> servers;
    for (size_t i = 0; i < sharded.num_shards(); ++i) {
      servers.push_back(StartShardServer(sharded, i));
    }
    return servers;
  }

  static Database* db_;
  static std::vector<std::string>* queries_;
};

Database* DistRouterTest::db_ = nullptr;
std::vector<std::string>* DistRouterTest::queries_ = nullptr;

TEST_F(DistRouterTest, RemoteScatterGatherBitIdenticalToSingleDatabase) {
  for (size_t num_shards : {size_t{1}, size_t{2}, size_t{4}}) {
    ShardedDatabase sharded = MakeSharded(num_shards);
    std::vector<ShardServer> servers = StartCluster(sharded);
    ShardRouter router(sharded, FastFailOptions(servers));
    ASSERT_TRUE(router.Start().ok());
    for (Strategy strategy : {Strategy::kSchema, Strategy::kDirect}) {
      for (const std::string& query : *queries_) {
        ExecOptions exec;
        exec.strategy = strategy;
        exec.n = 10;
        auto expected = db_->Execute(query, exec);
        ASSERT_TRUE(expected.ok()) << expected.status();
        auto routed = router.Execute(query, strategy, 10, /*deadline_ms=*/0);
        ASSERT_TRUE(routed.ok()) << routed.status();
        EXPECT_FALSE(routed->degraded);
        EXPECT_TRUE(routed->missing_shards.empty());
        EXPECT_EQ(Canonical(routed->answers), Canonical(*expected))
            << "shards=" << num_shards << " strategy="
            << (strategy == Strategy::kSchema ? "schema" : "direct")
            << " query=" << query;
      }
    }
    router.Shutdown();
    for (ShardServer& s : servers) s.Stop();
  }
}

TEST_F(DistRouterTest, UnboundedNAndShardHealthyPathMetrics) {
  // n = SIZE_MAX (all answers, no bound sharing) must also match.
  ShardedDatabase sharded = MakeSharded(2);
  std::vector<ShardServer> servers = StartCluster(sharded);
  ShardRouter router(sharded, FastFailOptions(servers));
  ASSERT_TRUE(router.Start().ok());
  ExecOptions exec;
  exec.n = SIZE_MAX;
  auto expected = db_->Execute((*queries_)[0], exec);
  ASSERT_TRUE(expected.ok()) << expected.status();
  auto routed =
      router.Execute((*queries_)[0], Strategy::kSchema, SIZE_MAX, 0);
  ASSERT_TRUE(routed.ok()) << routed.status();
  EXPECT_EQ(Canonical(routed->answers), Canonical(*expected));
  EXPECT_EQ(router.shard_health(0), ShardHealth::kUp);
  EXPECT_EQ(router.shard_health(1), ShardHealth::kUp);
  std::string metrics = router.DumpMetrics();
  EXPECT_NE(metrics.find("dist_queries"), std::string::npos);
  EXPECT_NE(metrics.find("dist_shard_0_health UP"), std::string::npos);
  router.Shutdown();
  for (ShardServer& s : servers) s.Stop();
}

TEST_F(DistRouterTest, OneShardDownDegradesWithCorrectMissingShards) {
  ShardedDatabase sharded = MakeSharded(4);
  std::vector<ShardServer> servers = StartCluster(sharded);
  constexpr size_t kDead = 2;
  RouterOptions options = FastFailOptions(servers);
  servers[kDead].Stop();

  ShardRouter router(sharded, options);
  ASSERT_TRUE(router.Start().ok());
  for (const std::string& query : *queries_) {
    auto routed = router.Execute(query, Strategy::kSchema, 10, 0);
    ASSERT_TRUE(routed.ok()) << routed.status();
    EXPECT_TRUE(routed->degraded);
    ASSERT_EQ(routed->missing_shards.size(), 1u);
    EXPECT_EQ(routed->missing_shards[0], kDead);

    // The degraded answer is the merge of the LIVE shards only: every
    // answer it does return matches the full result's entry (a correct
    // subset, not garbage).
    ExecOptions exec;
    exec.n = SIZE_MAX;
    auto full = db_->Execute(query, exec);
    ASSERT_TRUE(full.ok());
    for (const QueryAnswer& answer : routed->answers) {
      bool found = false;
      for (const QueryAnswer& expected : *full) {
        if (expected.root == answer.root && expected.cost == answer.cost) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "degraded answer invented root " << answer.root;
    }
  }
  // After enough consecutive failures the dead shard goes DOWN and is
  // skipped immediately (no timeout burned), still correctly degraded.
  EXPECT_EQ(router.shard_health(kDead), ShardHealth::kDown);
  auto after = router.Execute((*queries_)[0], Strategy::kSchema, 10, 0);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->degraded);
  router.Shutdown();
  for (ShardServer& s : servers) s.Stop();
}

TEST_F(DistRouterTest, DegradedResponsesAreNeverCached) {
  ShardedDatabase sharded = MakeSharded(4);
  std::vector<ShardServer> servers = StartCluster(sharded);
  RouterOptions router_options = FastFailOptions(servers);
  servers[1].Stop();

  ShardRouter router(sharded, router_options);
  ASSERT_TRUE(router.Start().ok());
  ServiceOptions service_options;
  service_options.num_threads = 2;
  service_options.cache_capacity = 64;
  QueryService service(router, service_options);

  QueryRequest first;
  first.query_text = (*queries_)[0];
  QueryResponse r1 = service.ExecuteNow(std::move(first));
  ASSERT_TRUE(r1.status.ok()) << r1.status;
  EXPECT_TRUE(r1.degraded);
  ASSERT_EQ(r1.missing_shards.size(), 1u);
  EXPECT_EQ(r1.missing_shards[0], 1u);

  // The identical query again: a degraded answer must not have been
  // cached, so this re-asks the cluster (and degrades again).
  QueryRequest second;
  second.query_text = (*queries_)[0];
  QueryResponse r2 = service.ExecuteNow(std::move(second));
  ASSERT_TRUE(r2.status.ok()) << r2.status;
  EXPECT_FALSE(r2.cache_hit);
  EXPECT_TRUE(r2.degraded);
  EXPECT_EQ(service.GetSnapshot().cache.hits, 0u);
  router.Shutdown();
  for (ShardServer& s : servers) s.Stop();
}

TEST_F(DistRouterTest, StrictModeFailsFastWithUnavailable) {
  ShardedDatabase sharded = MakeSharded(4);
  std::vector<ShardServer> servers = StartCluster(sharded);
  RouterOptions options = FastFailOptions(servers);
  servers[3].Stop();
  options.strict = true;
  ShardRouter router(sharded, options);
  ASSERT_TRUE(router.Start().ok());
  auto routed = router.Execute((*queries_)[0], Strategy::kSchema, 10, 0);
  ASSERT_FALSE(routed.ok());
  EXPECT_TRUE(routed.status().IsUnavailable()) << routed.status();
  router.Shutdown();
  for (ShardServer& s : servers) s.Stop();
}

TEST_F(DistRouterTest, AllShardsDownIsUnavailableInEveryMode) {
  ShardedDatabase sharded = MakeSharded(2);
  std::vector<ShardServer> servers = StartCluster(sharded);
  RouterOptions options = FastFailOptions(servers);
  for (ShardServer& s : servers) s.Stop();

  for (bool strict : {false, true}) {
    options.strict = strict;
    ShardRouter router(sharded, options);
    ASSERT_TRUE(router.Start().ok());
    auto routed = router.Execute((*queries_)[0], Strategy::kSchema, 10, 0);
    ASSERT_FALSE(routed.ok());
    EXPECT_TRUE(routed.status().IsUnavailable()) << routed.status();
    router.Shutdown();
  }
}

TEST_F(DistRouterTest, BadQueryFailsTheQueryNotTheCluster) {
  ShardedDatabase sharded = MakeSharded(2);
  std::vector<ShardServer> servers = StartCluster(sharded);
  ShardRouter router(sharded, FastFailOptions(servers));
  ASSERT_TRUE(router.Start().ok());
  auto routed = router.Execute("][not a query", Strategy::kSchema, 10, 0);
  ASSERT_FALSE(routed.ok());
  // A parse error is the query's own fault: not degraded, not
  // unavailable, and the shards stay healthy.
  EXPECT_FALSE(routed.status().IsUnavailable()) << routed.status();
  EXPECT_EQ(router.shard_health(0), ShardHealth::kUp);
  EXPECT_EQ(router.shard_health(1), ShardHealth::kUp);
  router.Shutdown();
  for (ShardServer& s : servers) s.Stop();
}

TEST_F(DistRouterTest, FingerprintMismatchIsRejectedNotMistranslated) {
  ShardedDatabase sharded = MakeSharded(2);
  std::vector<ShardServer> servers;
  servers.push_back(StartShardServer(sharded, 0));
  // Shard 1 claims a different layout: its local preorders must not be
  // translated through this router's DocSpan table.
  servers.push_back(
      StartShardServer(sharded, 1, /*port=*/0, /*fingerprint=*/0xBAD5EED));

  ShardRouter router(sharded, FastFailOptions(servers));
  ASSERT_TRUE(router.Start().ok());
  auto routed = router.Execute((*queries_)[0], Strategy::kSchema, 10, 0);
  // Non-strict: the mismatched shard is treated as missing (permanent
  // failure, no retry), so the answer degrades rather than lying.
  ASSERT_TRUE(routed.ok()) << routed.status();
  EXPECT_TRUE(routed->degraded);
  ASSERT_EQ(routed->missing_shards.size(), 1u);
  EXPECT_EQ(routed->missing_shards[0], 1u);
  router.Shutdown();
  for (ShardServer& s : servers) s.Stop();
}

TEST_F(DistRouterTest, ManifestOnlyRouterMatchesAndRejectsWrongLayout) {
  // A router host holding only a LayoutManifest (no trees, no postings)
  // must route bit-identically to one holding the full partition — and
  // a manifest describing a DIFFERENT layout pointed at these servers
  // must be rejected per call, never mistranslated.
  ShardedDatabase sharded = MakeSharded(2);
  std::vector<ShardServer> servers = StartCluster(sharded);

  // Round-trip through the serialized form, exactly what
  // `approxql_serve --save-manifest` / `--manifest` ship on disk.
  auto manifest = shard::LayoutManifest::Deserialize(
      shard::LayoutManifest::Of(sharded).Serialize());
  ASSERT_TRUE(manifest.ok()) << manifest.status();

  {
    ShardRouter router(*manifest, FastFailOptions(servers));
    ASSERT_TRUE(router.Start().ok());
    for (const std::string& query : *queries_) {
      ExecOptions exec;
      exec.n = 10;
      auto expected = db_->Execute(query, exec);
      ASSERT_TRUE(expected.ok()) << expected.status();
      auto routed = router.Execute(query, Strategy::kSchema, 10, 0);
      ASSERT_TRUE(routed.ok()) << routed.status();
      EXPECT_FALSE(routed->degraded);
      EXPECT_EQ(Canonical(routed->answers), Canonical(*expected)) << query;
    }
    router.Shutdown();
  }

  // Same endpoints, wrong layout: every shard's reply carries the real
  // fingerprint, the manifest claims another, so every slot fails
  // permanently (no retries) and the query is kUnavailable.
  std::vector<std::vector<shard::DocSpan>> spans;
  for (size_t s = 0; s < manifest->num_shards(); ++s) {
    spans.push_back(manifest->shard_spans(s));
  }
  shard::LayoutManifest wrong(manifest->fingerprint() ^ 0xDEADBEEF,
                              manifest->cost_model(), std::move(spans));
  ShardRouter router(wrong, FastFailOptions(servers));
  ASSERT_TRUE(router.Start().ok());
  auto routed = router.Execute((*queries_)[0], Strategy::kSchema, 10, 0);
  ASSERT_FALSE(routed.ok());
  EXPECT_EQ(routed.status().code(), util::StatusCode::kUnavailable)
      << routed.status();
  router.Shutdown();
  for (ShardServer& s : servers) s.Stop();
}

TEST_F(DistRouterTest, FastDownStopsRetryingMidQuery) {
  // Outcome-driven fast-DOWN: with a generous retry budget against a
  // dead endpoint, the router must NOT relaunch all retries (each
  // burning a full attempt deadline) — the backend flips DOWN at
  // failures_to_down consecutive transport failures and the slot is
  // declared missing during its next backoff instead.
  ShardedDatabase sharded = MakeSharded(2);
  std::vector<ShardServer> servers = StartCluster(sharded);
  RouterOptions options = FastFailOptions(servers);
  options.max_retries = 8;
  options.failures_to_down = 2;
  servers[1].Stop();
  ShardRouter router(sharded, options);
  ASSERT_TRUE(router.Start().ok());
  auto routed = router.Execute((*queries_)[0], Strategy::kSchema, 10, 0);
  ASSERT_TRUE(routed.ok()) << routed.status();
  EXPECT_TRUE(routed->degraded);
  ASSERT_EQ(routed->missing_shards.size(), 1u);
  EXPECT_EQ(routed->missing_shards[0], 1u);
  EXPECT_EQ(router.shard_health(1), ShardHealth::kDown);
  // Attempts stop at the DOWN threshold: the initial launch plus
  // exactly one retry (whose failure is the second consecutive one),
  // not the full max_retries budget.
  EXPECT_EQ(routed->retries, 1u);
  // The live shard's answers still arrive intact.
  ExecOptions exec;
  exec.n = SIZE_MAX;
  auto full = db_->Execute((*queries_)[0], exec);
  ASSERT_TRUE(full.ok());
  for (const QueryAnswer& answer : routed->answers) {
    bool found = false;
    for (const QueryAnswer& expected : *full) {
      if (expected.root == answer.root && expected.cost == answer.cost) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "degraded answer invented root " << answer.root;
  }
  router.Shutdown();
  for (ShardServer& s : servers) s.Stop();
}

TEST_F(DistRouterTest, HealthProbeRevivesARestartedShard) {
  ShardedDatabase sharded = MakeSharded(2);
  std::vector<ShardServer> servers = StartCluster(sharded);
  const uint16_t port1 = servers[1].port();

  RouterOptions options = FastFailOptions(servers);
  options.health_period_ms = 25;
  options.ping_deadline_ms = 200;
  ShardRouter router(sharded, options);
  ASSERT_TRUE(router.Start().ok());

  servers[1].Stop();
  // Health probes alone must walk shard 1 down…
  for (int i = 0; i < 200 && router.shard_health(1) != ShardHealth::kDown;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(router.shard_health(1), ShardHealth::kDown);

  // …and revive it once the server is back on the same port.
  servers[1] = StartShardServer(sharded, 1, port1);
  for (int i = 0; i < 500 && router.shard_health(1) != ShardHealth::kUp;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(router.shard_health(1), ShardHealth::kUp);

  // A revived shard serves full answers again: no degradation.
  auto routed = router.Execute((*queries_)[0], Strategy::kSchema, 10, 0);
  ASSERT_TRUE(routed.ok()) << routed.status();
  EXPECT_FALSE(routed->degraded);
  router.Shutdown();
  for (ShardServer& s : servers) s.Stop();
}

}  // namespace
}  // namespace approxql::dist
