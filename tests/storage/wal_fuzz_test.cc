// Randomized robustness of WAL replay and value-log reads — the
// storage counterpart of tests/net/wire_fuzz_test.cc. Whatever a crash
// (or bad disk) leaves in the files — truncated tails at every byte
// boundary, flipped bits anywhere including CRCs and the header,
// records spliced in from another log, duplicated or regressed
// sequence numbers — Open must never crash or hang: it either fails
// with a clean Corruption, or succeeds with a record list that is a
// strict prefix of what was actually written. Nothing past the first
// bad byte is ever replayed (a record after damage could otherwise
// resurrect un-acked state).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/targets.h"
#include "storage/vlog/value_log.h"
#include "storage/wal/wal.h"
#include "util/random.h"

namespace approxql::storage {
namespace {

// Same config string the shared fuzz/ WAL target opens with, so the
// damaged files this test constructs replay meaningfully through
// fuzz::FuzzWalReplay (a mismatched config would fail before parsing).
constexpr std::string_view kWalConfig = "fuzz-config";

// Routes raw WAL file bytes through the shared fuzz entry point — the
// identical contract check libFuzzer drives under -DAPPROXQL_FUZZ=ON.
void ReplayThroughWalFuzzTarget(std::string_view bytes) {
  EXPECT_EQ(fuzz::FuzzWalReplay(
                reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()),
            0);
}

// Likewise for the value log: the target input is a 16-byte pointer
// (offset, length; little-endian) followed by the file image.
void ReplayThroughVlogFuzzTarget(const SegmentPointer& pointer,
                                 std::string_view file) {
  std::string input;
  for (uint64_t v : {pointer.offset, pointer.length}) {
    for (int i = 0; i < 8; ++i) {
      input.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  input += file;
  EXPECT_EQ(fuzz::FuzzVlogRead(
                reinterpret_cast<const uint8_t*>(input.data()), input.size()),
            0);
}

std::string FuzzPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("approxql_walfuzz_" + name + "_" + std::to_string(::getpid())))
      .string();
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Builds a valid WAL at `path` and returns the payload of every record
/// (record i has seq i+1, type (i % 3) + 1).
std::vector<std::string> BuildValidWal(const std::string& path,
                                       std::string_view config,
                                       size_t num_records, util::Rng& rng) {
  std::filesystem::remove(path);
  auto opened = WriteAheadLog::Open(path, config);
  EXPECT_TRUE(opened.ok()) << opened.status();
  std::vector<std::string> payloads;
  for (size_t i = 0; i < num_records; ++i) {
    std::string payload(static_cast<size_t>(rng.UniformInt(0, 120)), ' ');
    for (char& c : payload) {
      c = static_cast<char>(rng.UniformInt(32, 126));
    }
    EXPECT_TRUE(
        (*opened).wal->Append(static_cast<uint32_t>(i % 3) + 1, payload).ok());
    payloads.push_back(std::move(payload));
  }
  EXPECT_TRUE((*opened).wal->Sync().ok());
  return payloads;
}

/// The fuzz invariant: opening `path` neither crashes nor returns
/// records that are not a prefix of `expected`.
void CheckPrefixOrCleanFailure(const std::string& path,
                               std::string_view config,
                               const std::vector<std::string>& expected) {
  auto opened = WriteAheadLog::Open(path, config);
  if (!opened.ok()) {
    // A clean typed failure (corrupt header / config mismatch) is an
    // acceptable outcome; a crash or hang is not, and gtest would have
    // caught either before we got here.
    EXPECT_TRUE(opened.status().IsCorruption() ||
                opened.status().code() == util::StatusCode::kIoError)
        << opened.status();
    return;
  }
  ASSERT_LE(opened->records.size(), expected.size());
  for (size_t i = 0; i < opened->records.size(); ++i) {
    EXPECT_EQ(opened->records[i].seq, i + 1) << "at record " << i;
    EXPECT_EQ(opened->records[i].payload, expected[i]) << "at record " << i;
  }
}

TEST(WalFuzzTest, TruncatedAtEveryByteBoundary) {
  util::Rng rng(0xda7a1);
  const std::string path = FuzzPath("trunc");
  auto payloads = BuildValidWal(path, kWalConfig, 10, rng);
  const std::string full = ReadFile(path);
  ASSERT_GT(full.size(), 0u);
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    WriteFile(path, full.substr(0, cut));
    CheckPrefixOrCleanFailure(path, kWalConfig, payloads);
    ReplayThroughWalFuzzTarget(std::string_view(full).substr(0, cut));
  }
  std::filesystem::remove(path);
}

TEST(WalFuzzTest, SingleByteFlipsAnywhere) {
  util::Rng rng(0xf11b);
  const std::string path = FuzzPath("flip");
  auto payloads = BuildValidWal(path, kWalConfig, 8, rng);
  const std::string full = ReadFile(path);
  for (int trial = 0; trial < 400; ++trial) {
    std::string mutated = full;
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(full.size()) - 1));
    mutated[pos] = static_cast<char>(mutated[pos] ^
                                     (1u << rng.UniformInt(0, 7)));
    WriteFile(path, mutated);
    CheckPrefixOrCleanFailure(path, kWalConfig, payloads);
    ReplayThroughWalFuzzTarget(mutated);
  }
  std::filesystem::remove(path);
}

TEST(WalFuzzTest, MultiByteGarbageSplices) {
  util::Rng rng(0x6a5b);
  const std::string path = FuzzPath("garbage");
  auto payloads = BuildValidWal(path, kWalConfig, 8, rng);
  const std::string full = ReadFile(path);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(full.size()) - 1));
    const size_t len =
        std::min(static_cast<size_t>(rng.UniformInt(1, 32)),
                 mutated.size() - pos);
    for (size_t i = 0; i < len; ++i) {
      mutated[pos + i] = static_cast<char>(rng.UniformInt(0, 255));
    }
    WriteFile(path, mutated);
    CheckPrefixOrCleanFailure(path, kWalConfig, payloads);
    ReplayThroughWalFuzzTarget(mutated);
  }
  std::filesystem::remove(path);
}

TEST(WalFuzzTest, SplicedRecordsFromAnotherLog) {
  // A tail transplanted from a DIFFERENT log (same config, different
  // history) starts at the wrong sequence number: replay must stop at
  // the seam, never stitch the two histories together.
  util::Rng rng(0x5ea3);
  const std::string path_a = FuzzPath("splice_a");
  const std::string path_b = FuzzPath("splice_b");
  auto payloads_a = BuildValidWal(path_a, kWalConfig, 6, rng);
  BuildValidWal(path_b, kWalConfig, 12, rng);
  const std::string full_a = ReadFile(path_a);
  const std::string full_b = ReadFile(path_b);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t keep_a = static_cast<size_t>(
        rng.UniformInt(1, static_cast<int64_t>(full_a.size())));
    const size_t from_b = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(full_b.size()) - 1));
    WriteFile(path_a, full_a.substr(0, keep_a) + full_b.substr(from_b));
    CheckPrefixOrCleanFailure(path_a, kWalConfig, payloads_a);
  }
  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);
}

TEST(WalFuzzTest, DuplicatedRecordBytesStopReplay) {
  // Append a byte-exact copy of the final record: its sequence number
  // repeats, which replay must treat as a torn tail (stop before it),
  // not apply twice.
  util::Rng rng(0xd0b1e);
  const std::string path = FuzzPath("dup");
  auto payloads = BuildValidWal(path, kWalConfig, 1, rng);
  const std::string one = ReadFile(path);
  auto more = BuildValidWal(path, kWalConfig, 2, rng);
  const std::string two = ReadFile(path);
  ASSERT_GT(two.size(), one.size());
  // Seed the duplicate run with the 2-record file's own bytes so the
  // copied slice is its genuine record 2.
  const std::string record2 = two.substr(one.size());
  WriteFile(path, two + record2);
  auto opened = WriteAheadLog::Open(path, kWalConfig);
  ASSERT_TRUE(opened.ok()) << opened.status();
  EXPECT_TRUE(opened->tail_truncated);
  ASSERT_EQ(opened->records.size(), 2u);
  EXPECT_EQ(opened->records[0].payload, more[0]);
  EXPECT_EQ(opened->records[1].payload, more[1]);
  std::filesystem::remove(path);
}

TEST(WalFuzzTest, ReplayThenAppendHealsTheFile) {
  // After replaying any damaged file, the log must accept appends and
  // reopen cleanly — truncation really removed the bad suffix.
  util::Rng rng(0x4ea1);
  const std::string path = FuzzPath("heal");
  auto payloads = BuildValidWal(path, kWalConfig, 6, rng);
  const std::string full = ReadFile(path);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = full;
    const size_t pos = static_cast<size_t>(rng.UniformInt(
        static_cast<int64_t>(full.size()) / 2,
        static_cast<int64_t>(full.size()) - 1));
    mutated[pos] = static_cast<char>(~mutated[pos]);
    WriteFile(path, mutated);
    auto opened = WriteAheadLog::Open(path, kWalConfig);
    if (!opened.ok()) continue;  // header damage: nothing to heal
    const size_t kept = opened->records.size();
    ASSERT_TRUE(opened->wal->Append(5, "healed").ok());
    ASSERT_TRUE(opened->wal->Sync().ok());
    opened->wal.reset();
    auto reopened = WriteAheadLog::Open(path, kWalConfig);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_FALSE(reopened->tail_truncated);
    ASSERT_EQ(reopened->records.size(), kept + 1);
    EXPECT_EQ(reopened->records.back().payload, "healed");
  }
  std::filesystem::remove(path);
}

TEST(VlogFuzzTest, ReadsNeverCrashOnDamage) {
  util::Rng rng(0x71a6);
  const std::string path = FuzzPath("vlog");
  std::filesystem::remove(path);
  std::vector<SegmentPointer> pointers;
  std::vector<std::string> values;
  {
    auto opened = ValueLog::Open(path);
    ASSERT_TRUE(opened.ok());
    for (int i = 0; i < 12; ++i) {
      std::string value(static_cast<size_t>(rng.UniformInt(1, 600)), ' ');
      for (char& c : value) c = static_cast<char>(rng.UniformInt(0, 255));
      pointers.push_back(*(*opened)->Append(value));
      values.push_back(std::move(value));
    }
    ASSERT_TRUE((*opened)->Sync().ok());
  }
  const std::string full = ReadFile(path);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = full;
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(full.size()) - 1));
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x40);
    WriteFile(path, mutated);
    ReplayThroughVlogFuzzTarget(pointers[static_cast<size_t>(
                                    trial % static_cast<int>(pointers.size()))],
                                mutated);
    auto opened = ValueLog::Open(path);
    if (!opened.ok()) continue;
    for (size_t i = 0; i < pointers.size(); ++i) {
      auto read = (*opened)->Read(pointers[i]);
      // Either the undamaged value, or a typed corruption — never a
      // crash, never silently wrong bytes.
      if (read.ok()) {
        EXPECT_EQ(*read, values[i]) << "segment " << i;
      } else {
        EXPECT_TRUE(read.status().IsCorruption() ||
                    read.status().code() == util::StatusCode::kIoError)
            << read.status();
      }
    }
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace approxql::storage
