// Randomized stress test of the B+tree against a std::map reference
// model: long random sequences of put/overwrite/delete/get/iterate must
// agree exactly, and the structural invariants must hold throughout.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>

#include "storage/bptree.h"
#include "util/random.h"

namespace approxql::storage {
namespace {

class BPlusTreeStressTest : public ::testing::TestWithParam<int> {};

std::string RandomKey(util::Rng& rng) {
  // Skewed key lengths: mostly short, sometimes near the limit.
  size_t length = rng.Bernoulli(0.05)
                      ? kMaxKeySize - rng.Uniform(10)
                      : 1 + rng.Uniform(24);
  std::string key;
  key.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    key.push_back(static_cast<char>('a' + rng.Uniform(8)));
  }
  return key;
}

std::string RandomValue(util::Rng& rng) {
  // Mostly inline-sized, sometimes spilling to overflow chains.
  size_t length = rng.Bernoulli(0.1) ? 400 + rng.Uniform(8000)
                                     : rng.Uniform(200);
  std::string value(length, '\0');
  for (auto& c : value) c = static_cast<char>('A' + rng.Uniform(26));
  return value;
}

TEST_P(BPlusTreeStressTest, AgreesWithReferenceModel) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 104729 + 31);
  std::string path =
      (std::filesystem::temp_directory_path() /
       ("approxql_stress_" + std::to_string(::getpid()) + "_" +
        std::to_string(GetParam())))
          .string();
  std::filesystem::remove(path);
  auto store_or = DiskKvStore::Open(path, true);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(store_or).value();
  std::map<std::string, std::string> model;

  for (int op = 0; op < 3000; ++op) {
    int choice = static_cast<int>(rng.Uniform(10));
    if (choice < 5) {  // put (new or overwrite)
      std::string key = RandomKey(rng);
      std::string value = RandomValue(rng);
      ASSERT_TRUE(store->Put(key, value).ok());
      model[key] = value;
    } else if (choice < 7) {  // delete (existing half the time)
      std::string key;
      if (!model.empty() && rng.Bernoulli(0.5)) {
        auto it = model.begin();
        std::advance(it, static_cast<long>(rng.Uniform(model.size())));
        key = it->first;
      } else {
        key = RandomKey(rng);
      }
      bool existed = false;
      ASSERT_TRUE(store->Delete(key, &existed).ok());
      EXPECT_EQ(existed, model.erase(key) > 0);
    } else if (choice < 9) {  // point lookup
      std::string key = RandomKey(rng);
      auto got = store->Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound()) << key;
      } else {
        ASSERT_TRUE(got.ok()) << key;
        EXPECT_EQ(*got, it->second);
      }
    } else {  // seek + short scan
      std::string key = RandomKey(rng);
      auto tree_it = store->NewIterator();
      tree_it->Seek(key);
      auto model_it = model.lower_bound(key);
      for (int step = 0; step < 5; ++step) {
        if (model_it == model.end()) {
          EXPECT_FALSE(tree_it->Valid());
          break;
        }
        ASSERT_TRUE(tree_it->Valid());
        EXPECT_EQ(tree_it->key(), model_it->first);
        EXPECT_EQ(tree_it->value(), model_it->second);
        tree_it->Next();
        ++model_it;
      }
    }
  }
  EXPECT_EQ(store->KeyCount(), model.size());
  auto invariants = store->tree()->CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants;

  // Everything survives a flush + reopen.
  ASSERT_TRUE(store->Flush().ok());
  store.reset();
  auto reopened_or = DiskKvStore::Open(path, false);
  ASSERT_TRUE(reopened_or.ok());
  auto reopened = std::move(reopened_or).value();
  EXPECT_EQ(reopened->KeyCount(), model.size());
  size_t checked = 0;
  for (const auto& [key, value] : model) {
    if (++checked > 200) break;  // sample; full scan below covers the rest
    auto got = reopened->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value);
  }
  auto it = reopened->NewIterator();
  it->SeekToFirst();
  auto model_it = model.begin();
  while (it->Valid() && model_it != model.end()) {
    EXPECT_EQ(it->key(), model_it->first);
    it->Next();
    ++model_it;
  }
  EXPECT_FALSE(it->Valid());
  EXPECT_EQ(model_it, model.end());
  reopened.reset();
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreeStressTest, ::testing::Range(0, 6));

TEST(BPlusTreeBoundedCacheTest, TinyCacheStaysCorrect) {
  // With caches far smaller than the working set, every operation
  // round-trips through serialization — results must not change.
  util::Rng rng(424242);
  std::string path = (std::filesystem::temp_directory_path() /
                      ("approxql_bounded_" + std::to_string(::getpid())))
                         .string();
  std::filesystem::remove(path);
  auto store_or = DiskKvStore::Open(path, true);
  ASSERT_TRUE(store_or.ok());
  auto store = std::move(store_or).value();
  store->tree()->SetCacheLimits(/*max_nodes=*/4, /*max_pages=*/8);

  std::map<std::string, std::string> model;
  for (int op = 0; op < 4000; ++op) {
    std::string key = "k" + std::to_string(rng.Uniform(800));
    if (rng.Bernoulli(0.7)) {
      std::string value(1 + rng.Uniform(600), 'v');
      ASSERT_TRUE(store->Put(key, value).ok());
      model[key] = value;
    } else {
      auto got = store->Get(key);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(got.status().IsNotFound());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, it->second);
      }
    }
    // Bound holds between operations.
    EXPECT_LE(store->tree()->CachedNodes(), 4u + 1);
  }
  EXPECT_EQ(store->KeyCount(), model.size());
  ASSERT_TRUE(store->Flush().ok());
  auto invariants = store->tree()->CheckInvariants();
  EXPECT_TRUE(invariants.ok()) << invariants;
  // Full verification after reopen with a tiny cache again.
  store.reset();
  auto reopened_or = DiskKvStore::Open(path, false);
  ASSERT_TRUE(reopened_or.ok());
  auto reopened = std::move(reopened_or).value();
  reopened->tree()->SetCacheLimits(4, 8);
  for (const auto& [key, value] : model) {
    auto got = reopened->Get(key);
    ASSERT_TRUE(got.ok()) << key << ": " << got.status();
    EXPECT_EQ(*got, value);
  }
  reopened.reset();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace approxql::storage
