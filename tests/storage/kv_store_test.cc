#include "storage/kv_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "storage/bptree.h"
#include "storage/mem_kv_store.h"
#include "util/random.h"

namespace approxql::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() /
          ("approxql_test_" + name + "_" + std::to_string(::getpid())))
      .string();
}

/// Type-parameterized suite: every KvStore implementation must satisfy
/// the same contract.
class KvStoreContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "mem") {
      store_ = std::make_unique<MemKvStore>();
    } else {
      path_ = TempPath("contract");
      std::filesystem::remove(path_);
      auto store = DiskKvStore::Open(path_, /*create_if_missing=*/true);
      ASSERT_TRUE(store.ok()) << store.status();
      store_ = std::move(store).value();
    }
  }

  void TearDown() override {
    store_.reset();
    if (!path_.empty()) std::filesystem::remove(path_);
  }

  std::unique_ptr<KvStore> store_;
  std::string path_;
};

TEST_P(KvStoreContractTest, PutGet) {
  ASSERT_TRUE(store_->Put("alpha", "1").ok());
  ASSERT_TRUE(store_->Put("beta", "2").ok());
  auto v = store_->Get("alpha");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "1");
  EXPECT_TRUE(store_->Get("gamma").status().IsNotFound());
  EXPECT_EQ(store_->KeyCount(), 2u);
}

TEST_P(KvStoreContractTest, Overwrite) {
  ASSERT_TRUE(store_->Put("k", "old").ok());
  ASSERT_TRUE(store_->Put("k", "new").ok());
  EXPECT_EQ(*store_->Get("k"), "new");
  EXPECT_EQ(store_->KeyCount(), 1u);
}

TEST_P(KvStoreContractTest, EmptyValueAndEmptyKey) {
  ASSERT_TRUE(store_->Put("k", "").ok());
  EXPECT_EQ(*store_->Get("k"), "");
  ASSERT_TRUE(store_->Put("", "empty-key").ok());
  EXPECT_EQ(*store_->Get(""), "empty-key");
}

TEST_P(KvStoreContractTest, Delete) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  bool existed = false;
  ASSERT_TRUE(store_->Delete("k", &existed).ok());
  EXPECT_TRUE(existed);
  EXPECT_TRUE(store_->Get("k").status().IsNotFound());
  ASSERT_TRUE(store_->Delete("k", &existed).ok());
  EXPECT_FALSE(existed);
  EXPECT_EQ(store_->KeyCount(), 0u);
}

TEST_P(KvStoreContractTest, Contains) {
  ASSERT_TRUE(store_->Put("k", "v").ok());
  EXPECT_TRUE(*store_->Contains("k"));
  EXPECT_FALSE(*store_->Contains("missing"));
}

TEST_P(KvStoreContractTest, IterationInKeyOrder) {
  std::vector<std::string> keys = {"delta", "alpha", "echo", "bravo",
                                   "charlie"};
  for (const auto& k : keys) {
    ASSERT_TRUE(store_->Put(k, "v:" + k).ok());
  }
  auto it = store_->NewIterator();
  it->SeekToFirst();
  std::vector<std::string> seen;
  while (it->Valid()) {
    seen.emplace_back(it->key());
    EXPECT_EQ(it->value(), "v:" + seen.back());
    it->Next();
  }
  std::vector<std::string> expected = {"alpha", "bravo", "charlie", "delta",
                                       "echo"};
  EXPECT_EQ(seen, expected);
}

TEST_P(KvStoreContractTest, SeekPositionsAtLowerBound) {
  for (const char* k : {"b", "d", "f"}) {
    ASSERT_TRUE(store_->Put(k, k).ok());
  }
  auto it = store_->NewIterator();
  it->Seek("c");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");
  it->Seek("d");
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "d");
  it->Seek("g");
  EXPECT_FALSE(it->Valid());
}

TEST_P(KvStoreContractTest, ManyKeysRandomOrder) {
  util::Rng rng(42);
  std::vector<uint32_t> ids(5000);
  for (uint32_t i = 0; i < ids.size(); ++i) ids[i] = i;
  // Shuffle.
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.Uniform(i)]);
  }
  for (uint32_t id : ids) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%08u", id);
    ASSERT_TRUE(store_->Put(key, std::to_string(id * 7)).ok());
  }
  EXPECT_EQ(store_->KeyCount(), ids.size());
  for (uint32_t id = 0; id < ids.size(); ++id) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%08u", id);
    auto v = store_->Get(key);
    ASSERT_TRUE(v.ok()) << key;
    EXPECT_EQ(*v, std::to_string(id * 7));
  }
  // Full scan is ordered and complete.
  auto it = store_->NewIterator();
  it->SeekToFirst();
  uint32_t count = 0;
  std::string prev;
  while (it->Valid()) {
    if (count > 0) {
      EXPECT_LT(prev, std::string(it->key()));
    }
    prev = std::string(it->key());
    ++count;
    it->Next();
  }
  EXPECT_EQ(count, ids.size());
}

TEST_P(KvStoreContractTest, LargeValuesRoundTrip) {
  // Values straddle the inline/overflow boundary and multi-page chains.
  for (size_t size : {0UL, 1UL, 511UL, 512UL, 513UL, 4089UL, 4090UL, 100000UL}) {
    std::string value(size, 'x');
    for (size_t i = 0; i < size; ++i) value[i] = static_cast<char>('a' + i % 26);
    std::string key = "size" + std::to_string(size);
    ASSERT_TRUE(store_->Put(key, value).ok());
    auto got = store_->Get(key);
    ASSERT_TRUE(got.ok()) << key;
    EXPECT_EQ(*got, value) << key;
  }
}

TEST_P(KvStoreContractTest, OverwriteLargeWithSmall) {
  std::string big(50000, 'b');
  ASSERT_TRUE(store_->Put("k", big).ok());
  ASSERT_TRUE(store_->Put("k", "small").ok());
  EXPECT_EQ(*store_->Get("k"), "small");
  std::string big2(60000, 'c');
  ASSERT_TRUE(store_->Put("k", big2).ok());
  EXPECT_EQ(*store_->Get("k"), big2);
}

INSTANTIATE_TEST_SUITE_P(Stores, KvStoreContractTest,
                         ::testing::Values("mem", "disk"),
                         [](const auto& info) { return info.param; });

// --- Disk-specific behaviour ---

class DiskKvStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = TempPath("disk");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::unique_ptr<DiskKvStore> OpenStore(bool create = true) {
    auto store = DiskKvStore::Open(path_, create);
    EXPECT_TRUE(store.ok()) << store.status();
    return std::move(store).value();
  }

  std::string path_;
};

TEST_F(DiskKvStoreTest, PersistsAcrossReopen) {
  {
    auto store = OpenStore();
    for (int i = 0; i < 2000; ++i) {
      ASSERT_TRUE(store
                      ->Put("key" + std::to_string(i),
                            "value" + std::to_string(i * 3))
                      .ok());
    }
    std::string big(30000, 'z');
    ASSERT_TRUE(store->Put("big", big).ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  {
    auto store = OpenStore(/*create=*/false);
    EXPECT_EQ(store->KeyCount(), 2001u);
    EXPECT_EQ(*store->Get("key1234"), "value3702");
    EXPECT_EQ(store->Get("big")->size(), 30000u);
    EXPECT_TRUE(store->tree()->CheckInvariants().ok());
  }
}

TEST_F(DiskKvStoreTest, FlushOnDestructionPersists) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->Put("durable", "yes").ok());
    // No explicit Flush: the destructor must flush.
  }
  auto store = OpenStore(/*create=*/false);
  EXPECT_EQ(*store->Get("durable"), "yes");
}

TEST_F(DiskKvStoreTest, OpenMissingWithoutCreateFails) {
  auto store = DiskKvStore::Open(path_, /*create_if_missing=*/false);
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), util::StatusCode::kIoError);
}

TEST_F(DiskKvStoreTest, RejectsForeignFile) {
  {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::string junk(8192, 'j');
    std::fwrite(junk.data(), 1, junk.size(), f);
    std::fclose(f);
  }
  auto store = DiskKvStore::Open(path_, /*create_if_missing=*/true);
  ASSERT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsCorruption());
}

TEST_F(DiskKvStoreTest, KeyTooLargeRejected) {
  auto store = OpenStore();
  std::string key(kMaxKeySize + 1, 'k');
  auto s = store->Put(key, "v");
  EXPECT_EQ(s.code(), util::StatusCode::kInvalidArgument);
  std::string ok_key(kMaxKeySize, 'k');
  EXPECT_TRUE(store->Put(ok_key, "v").ok());
}

TEST_F(DiskKvStoreTest, TreeGrowsAndKeepsInvariants) {
  auto store = OpenStore();
  util::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    std::string key = "k" + std::to_string(rng.Next() % 100000);
    ASSERT_TRUE(store->Put(key, std::string(1 + i % 200, 'v')).ok());
  }
  EXPECT_GE(store->tree()->Height(), 2);
  auto s = store->tree()->CheckInvariants();
  EXPECT_TRUE(s.ok()) << s;
}

TEST_F(DiskKvStoreTest, DeleteKeepsInvariantsAndIteration) {
  auto store = OpenStore();
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(store->Put("k" + std::to_string(1000000 + i), "v").ok());
  }
  // Delete a stride, leaving holes (possibly empty leaves).
  for (int i = 0; i < 3000; i += 2) {
    bool existed = false;
    ASSERT_TRUE(store->Delete("k" + std::to_string(1000000 + i), &existed).ok());
    EXPECT_TRUE(existed);
  }
  EXPECT_EQ(store->KeyCount(), 1500u);
  auto s = store->tree()->CheckInvariants();
  EXPECT_TRUE(s.ok()) << s;
  auto it = store->NewIterator();
  it->SeekToFirst();
  size_t n = 0;
  while (it->Valid()) {
    ++n;
    it->Next();
  }
  EXPECT_EQ(n, 1500u);
}

TEST_F(DiskKvStoreTest, ChecksumDetectsBitFlips) {
  {
    auto store = OpenStore();
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(store->Put("key" + std::to_string(i), "value").ok());
    }
    ASSERT_TRUE(store->Flush().ok());
  }
  // Flip one byte in the middle of a non-meta page.
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(kPageSize) + 100, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(kPageSize) + 100, SEEK_SET), 0);
    std::fputc(c ^ 0x40, f);
    std::fclose(f);
  }
  auto store = OpenStore(/*create=*/false);
  // Reading through the damaged page must surface Corruption, not
  // garbage data. (Which key hits the page depends on layout, so scan.)
  bool saw_corruption = false;
  for (int i = 0; i < 500 && !saw_corruption; ++i) {
    auto v = store->Get("key" + std::to_string(i));
    if (!v.ok()) {
      EXPECT_TRUE(v.status().IsCorruption()) << v.status();
      saw_corruption = v.status().IsCorruption();
    }
  }
  EXPECT_TRUE(saw_corruption);
}

TEST_F(DiskKvStoreTest, ChecksumDetectsTruncatedTrailer) {
  {
    auto store = OpenStore();
    ASSERT_TRUE(store->Put("k", std::string(20000, 'x')).ok());
    ASSERT_TRUE(store->Flush().ok());
  }
  // Zero an overflow page's checksum.
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 3 * static_cast<long>(kPageSize) -4, SEEK_SET), 0);
    const char zeros[4] = {0, 0, 0, 0};
    std::fwrite(zeros, 1, 4, f);
    std::fclose(f);
  }
  auto store = OpenStore(/*create=*/false);
  auto v = store->Get("k");
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsCorruption());
}

TEST_F(DiskKvStoreTest, FreedOverflowPagesAreRecycled) {
  auto store = OpenStore();
  std::string big(100000, 'a');
  ASSERT_TRUE(store->Put("k", big).ok());
  ASSERT_TRUE(store->Flush().ok());
  auto size_before = std::filesystem::file_size(path_);
  // Rewriting the same large value many times must reuse freed pages
  // rather than growing the file linearly. The new chain is written
  // before the old one is freed, so the file grows by at most one extra
  // chain (~25 pages for 100 KB) and then stabilizes.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store->Put("k", big).ok());
  }
  ASSERT_TRUE(store->Flush().ok());
  auto size_after = std::filesystem::file_size(path_);
  EXPECT_LE(size_after, size_before + 30 * kPageSize);
  EXPECT_GT(store->tree()->KeyCount(), 0u);
}

}  // namespace
}  // namespace approxql::storage
