#include "storage/pager.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

namespace approxql::storage {
namespace {

class PagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("approxql_pager_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::unique_ptr<Pager> OpenPager(bool create = true) {
    auto pager = Pager::Open(path_, create);
    EXPECT_TRUE(pager.ok()) << pager.status();
    return std::move(pager).value();
  }

  std::string path_;
};

TEST_F(PagerTest, FreshFileHasMetaPageOnly) {
  auto pager = OpenPager();
  EXPECT_EQ(pager->page_count(), 1u);
  EXPECT_EQ(pager->freelist_size(), 0u);
}

TEST_F(PagerTest, AllocateWriteReadRoundTrip) {
  {
    auto pager = OpenPager();
    auto id = pager->Allocate();
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 1u);
    auto page = pager->Fetch(*id);
    ASSERT_TRUE(page.ok());
    std::memcpy((*page)->data.data(), "hello pager", 11);
    (*page)->dirty = true;
    ASSERT_TRUE(pager->Flush().ok());
  }
  auto pager = OpenPager(/*create=*/false);
  EXPECT_EQ(pager->page_count(), 2u);
  auto page = pager->Fetch(1);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(std::memcmp((*page)->data.data(), "hello pager", 11), 0);
}

TEST_F(PagerTest, MetaSlotsPersist) {
  {
    auto pager = OpenPager();
    pager->SetMetaSlot(0, 12345);
    pager->SetMetaSlot(3, 0xDEADBEEF);
    ASSERT_TRUE(pager->Flush().ok());
  }
  auto pager = OpenPager(false);
  EXPECT_EQ(pager->GetMetaSlot(0), 12345u);
  EXPECT_EQ(pager->GetMetaSlot(3), 0xDEADBEEFu);
  EXPECT_EQ(pager->GetMetaSlot(1), 0u);
}

TEST_F(PagerTest, FreelistRecyclesPages) {
  auto pager = OpenPager();
  auto a = pager->Allocate();
  auto b = pager->Allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(pager->Free(*a).ok());
  EXPECT_EQ(pager->freelist_size(), 1u);
  auto c = pager->Allocate();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a) << "freed page must be recycled";
  EXPECT_EQ(pager->freelist_size(), 0u);
  EXPECT_EQ(pager->page_count(), 3u);
}

TEST_F(PagerTest, FetchBeyondPageCountFails) {
  auto pager = OpenPager();
  auto page = pager->Fetch(99);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), util::StatusCode::kOutOfRange);
}

TEST_F(PagerTest, EvictionWritesBackDirtyPages) {
  auto pager = OpenPager();
  pager->set_cache_limit(2);
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) {
    auto id = pager->Allocate();
    ASSERT_TRUE(id.ok());
    auto page = pager->Fetch(*id);
    ASSERT_TRUE(page.ok());
    (*page)->data[0] = static_cast<uint8_t>(0xA0 + i);
    (*page)->dirty = true;
    ids.push_back(*id);
    ASSERT_TRUE(pager->EvictIfNeeded().ok());
    EXPECT_LE(pager->cached_pages(), 2u);
  }
  // Every page readable with its content, through re-reads from disk.
  for (int i = 0; i < 6; ++i) {
    auto page = pager->Fetch(ids[static_cast<size_t>(i)]);
    ASSERT_TRUE(page.ok()) << page.status();
    EXPECT_EQ((*page)->data[0], 0xA0 + i);
  }
}

TEST_F(PagerTest, UnlimitedCacheNeverEvicts) {
  auto pager = OpenPager();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pager->Allocate().ok());
  }
  ASSERT_TRUE(pager->EvictIfNeeded().ok());
  EXPECT_EQ(pager->cached_pages(), 10u);
}

TEST_F(PagerTest, CorruptMetaRejectedOnOpen) {
  {
    auto pager = OpenPager();
    ASSERT_TRUE(pager->Flush().ok());
  }
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 64, SEEK_SET);
    std::fputc(0x5A, f);
    std::fclose(f);
  }
  auto pager = Pager::Open(path_, /*create_if_missing=*/false);
  ASSERT_FALSE(pager.ok());
  EXPECT_TRUE(pager.status().IsCorruption());
}

}  // namespace
}  // namespace approxql::storage
