// The durability primitives under src/storage/wal and src/storage/vlog:
// WAL append/replay/truncate semantics (strictly consecutive sequence
// numbers, config pinning, torn-tail tolerance), value-log segment
// round trips with checkpoint-size truncation, and the SpillingStore
// decorator's layout contract (spill decision a pure function of value
// size, so replaying the same Puts reproduces the identical log bytes).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "storage/mem_kv_store.h"
#include "storage/spilling_store.h"
#include "storage/vlog/value_log.h"
#include "storage/wal/wal.h"

namespace approxql::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("approxql_wal_test_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }

  std::string path_;
};

TEST_F(WalTest, AppendSyncReplayRoundTrip) {
  {
    auto opened = WriteAheadLog::Open(path_, "cfg=1");
    ASSERT_TRUE(opened.ok()) << opened.status();
    ASSERT_TRUE(opened->records.empty());
    EXPECT_FALSE(opened->tail_truncated);
    auto& wal = *opened->wal;
    EXPECT_EQ(wal.last_seq(), 0u);
    auto s1 = wal.Append(7, "first");
    ASSERT_TRUE(s1.ok());
    EXPECT_EQ(*s1, 1u);
    auto s2 = wal.Append(9, std::string(1000, 'x'));
    ASSERT_TRUE(s2.ok());
    EXPECT_EQ(*s2, 2u);
    ASSERT_TRUE(wal.Sync().ok());
  }
  auto reopened = WriteAheadLog::Open(path_, "cfg=1");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_FALSE(reopened->tail_truncated);
  ASSERT_EQ(reopened->records.size(), 2u);
  EXPECT_EQ(reopened->records[0].seq, 1u);
  EXPECT_EQ(reopened->records[0].type, 7u);
  EXPECT_EQ(reopened->records[0].payload, "first");
  EXPECT_EQ(reopened->records[1].seq, 2u);
  EXPECT_EQ(reopened->records[1].type, 9u);
  EXPECT_EQ(reopened->records[1].payload, std::string(1000, 'x'));
  EXPECT_EQ(reopened->wal->last_seq(), 2u);
}

TEST_F(WalTest, ConfigMismatchIsCorruption) {
  {
    auto opened = WriteAheadLog::Open(path_, "shards=2");
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(opened->wal->Append(1, "x").ok());
    ASSERT_TRUE(opened->wal->Sync().ok());
  }
  auto wrong = WriteAheadLog::Open(path_, "shards=4");
  ASSERT_FALSE(wrong.ok());
  EXPECT_TRUE(wrong.status().IsCorruption()) << wrong.status();
}

TEST_F(WalTest, TruncatePreservesSequenceNumbering) {
  {
    auto opened = WriteAheadLog::Open(path_, "c");
    ASSERT_TRUE(opened.ok());
    auto& wal = *opened->wal;
    for (int i = 0; i < 5; ++i) ASSERT_TRUE(wal.Append(1, "r").ok());
    ASSERT_TRUE(wal.Sync().ok());
    ASSERT_TRUE(wal.Truncate().ok());
    EXPECT_EQ(wal.base_seq(), 5u);
    EXPECT_EQ(wal.last_seq(), 5u);
    // Numbering continues from where the checkpoint left it.
    auto next = wal.Append(1, "after");
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(*next, 6u);
    ASSERT_TRUE(wal.Sync().ok());
  }
  auto reopened = WriteAheadLog::Open(path_, "c");
  ASSERT_TRUE(reopened.ok());
  ASSERT_EQ(reopened->records.size(), 1u);
  EXPECT_EQ(reopened->records[0].seq, 6u);
  EXPECT_EQ(reopened->wal->base_seq(), 5u);
}

TEST_F(WalTest, UnsyncedSuffixMayVanishAfterAbandon) {
  {
    auto opened = WriteAheadLog::Open(path_, "c");
    ASSERT_TRUE(opened.ok());
    auto& wal = *opened->wal;
    ASSERT_TRUE(wal.Append(1, "durable").ok());
    ASSERT_TRUE(wal.Sync().ok());
    ASSERT_TRUE(wal.Append(1, "buffered-only").ok());
    wal.Abandon();  // no sync: the second record was never acked
  }
  auto reopened = WriteAheadLog::Open(path_, "c");
  ASSERT_TRUE(reopened.ok());
  // The synced prefix is always there; the abandoned suffix may or may
  // not be (stdio buffering), but replay never fails on it.
  ASSERT_GE(reopened->records.size(), 1u);
  EXPECT_EQ(reopened->records[0].payload, "durable");
}

TEST_F(WalTest, TornTailIsDroppedCleanly) {
  {
    auto opened = WriteAheadLog::Open(path_, "c");
    ASSERT_TRUE(opened.ok());
    auto& wal = *opened->wal;
    ASSERT_TRUE(wal.Append(1, "one").ok());
    ASSERT_TRUE(wal.Append(1, "two").ok());
    ASSERT_TRUE(wal.Append(1, std::string(500, 't')).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  // Chop bytes off the end: the last record becomes a torn tail.
  const auto full_size = std::filesystem::file_size(path_);
  std::filesystem::resize_file(path_, full_size - 17);
  auto reopened = WriteAheadLog::Open(path_, "c");
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE(reopened->tail_truncated);
  ASSERT_EQ(reopened->records.size(), 2u);
  EXPECT_EQ(reopened->records[1].payload, "two");
  // The torn suffix was physically truncated away: appending works and
  // a further reopen sees a clean log.
  ASSERT_TRUE(reopened->wal->Append(1, "three").ok());
  ASSERT_TRUE(reopened->wal->Sync().ok());
  auto again = WriteAheadLog::Open(path_, "c");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->tail_truncated);
  ASSERT_EQ(again->records.size(), 3u);
  EXPECT_EQ(again->records[2].seq, 3u);
}

class VlogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("approxql_vlog_test_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
};

TEST_F(VlogTest, AppendReadRoundTripAndSize) {
  auto opened = ValueLog::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status();
  auto& vlog = **opened;
  EXPECT_EQ(vlog.size(), ValueLog::HeaderSize());
  auto p1 = vlog.Append("hello");
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->offset, ValueLog::HeaderSize());
  EXPECT_EQ(p1->length, 5u);
  auto p2 = vlog.Append(std::string(4000, 'v'));
  ASSERT_TRUE(p2.ok());
  ASSERT_TRUE(vlog.Sync().ok());
  EXPECT_EQ(*vlog.Read(*p1), "hello");
  EXPECT_EQ(vlog.Read(*p2)->size(), 4000u);
}

TEST_F(VlogTest, TruncateToRestoresCheckpointedLayout) {
  uint64_t checkpoint_size = 0;
  SegmentPointer keep;
  {
    auto opened = ValueLog::Open(path_);
    ASSERT_TRUE(opened.ok());
    auto& vlog = **opened;
    keep = *vlog.Append("keep-me");
    checkpoint_size = vlog.size();
    ASSERT_TRUE(vlog.Append("post-checkpoint junk").ok());
    ASSERT_TRUE(vlog.Sync().ok());
  }
  auto reopened = ValueLog::Open(path_);
  ASSERT_TRUE(reopened.ok());
  auto& vlog = **reopened;
  ASSERT_TRUE(vlog.TruncateTo(checkpoint_size).ok());
  EXPECT_EQ(vlog.size(), checkpoint_size);
  EXPECT_EQ(*vlog.Read(keep), "keep-me");
  // Replay appends land at byte-identical offsets.
  auto replayed = vlog.Append("post-checkpoint junk");
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->offset, checkpoint_size);
  // Bad truncation targets are rejected, not applied.
  EXPECT_FALSE(vlog.TruncateTo(vlog.size() + 1).ok());
  EXPECT_FALSE(vlog.TruncateTo(ValueLog::HeaderSize() - 1).ok());
}

TEST_F(VlogTest, CorruptSegmentFailsTheReadOnly) {
  SegmentPointer first, second;
  {
    auto opened = ValueLog::Open(path_);
    ASSERT_TRUE(opened.ok());
    first = *(*opened)->Append(std::string(100, 'a'));
    second = *(*opened)->Append(std::string(100, 'b'));
    ASSERT_TRUE((*opened)->Sync().ok());
  }
  {
    // Flip one byte inside the first segment's value.
    std::fstream file(path_, std::ios::in | std::ios::out |
                                 std::ios::binary);
    file.seekp(static_cast<std::streamoff>(first.offset) + 4);
    file.put('X');
  }
  auto reopened = ValueLog::Open(path_);
  ASSERT_TRUE(reopened.ok());
  auto bad = (*reopened)->Read(first);
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsCorruption());
  EXPECT_EQ(*(*reopened)->Read(second), std::string(100, 'b'));
}

class SpillingStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("approxql_spill_test_" + std::to_string(::getpid())))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::unique_ptr<SpillingStore> OpenSpilling(size_t threshold) {
    auto vlog = ValueLog::Open(path_);
    EXPECT_TRUE(vlog.ok()) << vlog.status();
    return std::make_unique<SpillingStore>(std::make_unique<MemKvStore>(),
                                           std::move(vlog).value(), threshold);
  }

  std::string path_;
};

TEST_F(SpillingStoreTest, ThresholdSplitsInlineFromSpilled) {
  auto store = OpenSpilling(/*threshold=*/16);
  ASSERT_TRUE(store->Put("small", std::string(16, 's')).ok());
  ASSERT_TRUE(store->Put("large", std::string(17, 'l')).ok());
  EXPECT_EQ(store->stats().inline_puts, 1u);
  EXPECT_EQ(store->stats().spilled_puts, 1u);
  EXPECT_EQ(store->stats().spilled_bytes, 17u);
  EXPECT_EQ(*store->Get("small"), std::string(16, 's'));
  EXPECT_EQ(*store->Get("large"), std::string(17, 'l'));
  // The iterator resolves spilled values transparently too.
  auto it = store->NewIterator();
  it->SeekToFirst();
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->key(), "large");
  EXPECT_EQ(it->value(), std::string(17, 'l'));
}

TEST_F(SpillingStoreTest, ReplayedPutsReproduceTheLogLayout) {
  // The WAL-reproducibility invariant: the same Put sequence against a
  // truncated-back log lands every spilled value at the same offset.
  uint64_t size_after = 0;
  {
    auto store = OpenSpilling(8);
    ASSERT_TRUE(store->Put("a", std::string(100, 'a')).ok());
    ASSERT_TRUE(store->Put("b", "tiny").ok());
    ASSERT_TRUE(store->Put("c", std::string(300, 'c')).ok());
    ASSERT_TRUE(store->Flush().ok());
    size_after = store->vlog()->size();
  }
  {
    auto store = OpenSpilling(8);
    ASSERT_TRUE(store->vlog()->TruncateTo(ValueLog::HeaderSize()).ok());
    ASSERT_TRUE(store->Put("a", std::string(100, 'a')).ok());
    ASSERT_TRUE(store->Put("b", "tiny").ok());
    ASSERT_TRUE(store->Put("c", std::string(300, 'c')).ok());
    ASSERT_TRUE(store->Flush().ok());
    EXPECT_EQ(store->vlog()->size(), size_after);
    EXPECT_EQ(*store->Get("c"), std::string(300, 'c'));
  }
}

TEST_F(SpillingStoreTest, OverwriteAndDeleteSpilledValues) {
  auto store = OpenSpilling(8);
  ASSERT_TRUE(store->Put("k", std::string(50, 'x')).ok());
  ASSERT_TRUE(store->Put("k", "now-inline").ok());
  EXPECT_EQ(*store->Get("k"), "now-inline");
  ASSERT_TRUE(store->Put("k", std::string(60, 'y')).ok());
  EXPECT_EQ(*store->Get("k"), std::string(60, 'y'));
  bool existed = false;
  ASSERT_TRUE(store->Delete("k", &existed).ok());
  EXPECT_TRUE(existed);
  EXPECT_TRUE(store->Get("k").status().IsNotFound());
}

}  // namespace
}  // namespace approxql::storage
