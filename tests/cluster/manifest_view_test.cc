// ManifestView: the router's composite epoch-versioned view of every
// shard server's manifest slice. The invariants under test are the
// manifest-sync safety properties of DESIGN.md §14 — dropped,
// reordered, or duplicated deltas and fetches racing publishes must
// produce either a correct translation or a typed error, NEVER a
// translation through the wrong epoch's spans.
#include "cluster/manifest_view.h"

#include <gtest/gtest.h>

#include <vector>

#include "net/wire.h"
#include "shard/sharded_database.h"
#include "util/status.h"

namespace approxql::cluster {
namespace {

using net::WireManifestDelta;
using shard::DocSpan;

DocSpan Span(doc::NodeId local_start, doc::NodeId global_start,
             uint32_t length) {
  DocSpan span;
  span.local_start = local_start;
  span.global_start = global_start;
  span.length = length;
  return span;
}

WireManifestDelta AddDelta(uint32_t shard, uint64_t prev_epoch, uint64_t epoch,
                           DocSpan span) {
  WireManifestDelta delta;
  delta.shard_index = shard;
  delta.prev_epoch = prev_epoch;
  delta.epoch = epoch;
  delta.op = WireManifestDelta::Op::kAdd;
  delta.span = span;
  return delta;
}

WireManifestDelta RemoveDelta(uint32_t shard, uint64_t prev_epoch,
                              uint64_t epoch, DocSpan span) {
  WireManifestDelta delta = AddDelta(shard, prev_epoch, epoch, span);
  delta.op = WireManifestDelta::Op::kRemove;
  return delta;
}

TEST(ManifestViewTest, UnknownShardUntilFirstInstall) {
  ManifestView view(2);
  EXPECT_FALSE(view.known(0));
  EXPECT_EQ(view.epoch(0), 0u);
  // An installed EMPTY slice at epoch 0 is "fetched and empty", not
  // "unknown" — a fresh shard server legitimately reports epoch 0.
  view.InstallSlice(0, 0, {});
  EXPECT_TRUE(view.known(0));
  EXPECT_FALSE(view.known(1));
  EXPECT_EQ(view.NextGlobal(), 1u);  // id 0 is the super-root
}

TEST(ManifestViewTest, ToGlobalTranslatesThroughExactEpoch) {
  ManifestView view(1);
  view.InstallSlice(0, 3, {Span(1, 1, 4), Span(5, 9, 2)});
  // local 0 is the shard super-root.
  auto root = view.ToGlobal(0, 3, 0);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(*root, 0u);
  auto first = view.ToGlobal(0, 3, 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1u);
  auto mid = view.ToGlobal(0, 3, 6);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(*mid, 10u);  // second span: 9 + (6 - 5)
  // A local id in the gap between spans is a real inconsistency, not a
  // retryable miss: InvalidArgument.
  auto outside = view.ToGlobal(0, 3, 8);
  ASSERT_FALSE(outside.ok());
  EXPECT_EQ(outside.status().code(), util::StatusCode::kInvalidArgument)
      << outside.status();
}

TEST(ManifestViewTest, ToGlobalAtUnknownEpochIsUnavailable) {
  ManifestView view(1);
  view.InstallSlice(0, 5, {Span(1, 1, 3)});
  // Epoch 7 was never installed: retryable (fetch, then retranslate).
  auto miss = view.ToGlobal(0, 7, 1);
  ASSERT_FALSE(miss.ok());
  EXPECT_TRUE(miss.status().IsUnavailable()) << miss.status();
  // Epoch 2 predates every held slice — e.g. an answer computed under
  // an epoch older than the server's recovery checkpoint. Same typed
  // error: the caller re-queries; the view never guesses.
  auto ancient = view.ToGlobal(0, 2, 1);
  ASSERT_FALSE(ancient.ok());
  EXPECT_TRUE(ancient.status().IsUnavailable()) << ancient.status();
}

TEST(ManifestViewTest, AddDeltaAdvancesEpochAndKeepsHistory) {
  ManifestView view(1);
  view.InstallSlice(0, 1, {Span(1, 1, 3)});
  ASSERT_TRUE(view.ApplyDelta(AddDelta(0, 1, 2, Span(4, 10, 2))));
  EXPECT_EQ(view.epoch(0), 2u);
  EXPECT_EQ(view.document_count(), 2u);
  EXPECT_EQ(view.NextGlobal(), 12u);
  // The superseded epoch stays translatable: an answer computed at
  // epoch 1 that arrives after the publish still lands.
  auto old_epoch = view.ToGlobal(0, 1, 2);
  ASSERT_TRUE(old_epoch.ok());
  EXPECT_EQ(*old_epoch, 2u);
  auto new_epoch = view.ToGlobal(0, 2, 5);
  ASSERT_TRUE(new_epoch.ok());
  EXPECT_EQ(*new_epoch, 11u);
}

TEST(ManifestViewTest, RemoveDeltaShiftsLocalIdsKeepsGlobalHole) {
  ManifestView view(1);
  view.InstallSlice(0, 1, {Span(1, 1, 3), Span(4, 4, 2), Span(6, 6, 5)});
  // Remove the middle document: the shard rebuilds compactly, so later
  // documents' LOCAL ids shift down by the removed length; their GLOBAL
  // ids are permanent (the hole at 4..5 stays a hole forever).
  ASSERT_TRUE(view.ApplyDelta(RemoveDelta(0, 1, 2, Span(4, 4, 2))));
  auto shifted = view.ToGlobal(0, 2, 4);  // was local 6 before the shift
  ASSERT_TRUE(shifted.ok());
  EXPECT_EQ(*shifted, 6u);
  EXPECT_EQ(view.DocRootOf(5), 0u);   // the hole resolves to no document
  EXPECT_EQ(view.DocRootOf(8), 6u);   // inside the surviving document
  EXPECT_EQ(view.NextGlobal(), 11u);  // holes are never reused
  uint32_t shard = 0;
  DocSpan span;
  EXPECT_FALSE(view.FindDocument(4, &shard, &span));
  ASSERT_TRUE(view.FindDocument(6, &shard, &span));
  EXPECT_EQ(shard, 0u);
  EXPECT_EQ(span.length, 5u);
}

TEST(ManifestViewTest, DroppedDeltaIsAGapAndForcesFetch) {
  ManifestView view(1);
  view.InstallSlice(0, 1, {Span(1, 1, 3)});
  // Delta 1->2 was dropped on the wire; 2->3 arrives. prev_epoch does
  // not match the held epoch: refuse (caller re-fetches the slice).
  EXPECT_FALSE(view.ApplyDelta(AddDelta(0, 2, 3, Span(6, 20, 2))));
  EXPECT_EQ(view.epoch(0), 1u);  // unchanged — never guess across a gap
  // Recovery: a full fetch at epoch 3 installs, and the NEXT delta
  // chains off it normally.
  view.InstallSlice(0, 3, {Span(1, 1, 3), Span(4, 10, 2), Span(6, 20, 2)});
  EXPECT_TRUE(view.ApplyDelta(AddDelta(0, 3, 4, Span(8, 22, 1))));
  EXPECT_EQ(view.epoch(0), 4u);
  EXPECT_EQ(view.NextGlobal(), 23u);
}

TEST(ManifestViewTest, ReorderedAndDuplicateDeltasAreStaleNoOps) {
  ManifestView view(1);
  view.InstallSlice(0, 1, {Span(1, 1, 3)});
  const WireManifestDelta first = AddDelta(0, 1, 2, Span(4, 10, 2));
  ASSERT_TRUE(view.ApplyDelta(first));
  // Duplicate delivery of an already-applied delta: true (nothing to
  // re-fetch), and the slice is unchanged.
  EXPECT_TRUE(view.ApplyDelta(first));
  EXPECT_EQ(view.epoch(0), 2u);
  EXPECT_EQ(view.document_count(), 2u);
  // A delta reordered from before the current epoch is equally stale.
  EXPECT_TRUE(view.ApplyDelta(AddDelta(0, 0, 1, Span(1, 1, 3))));
  EXPECT_EQ(view.epoch(0), 2u);
}

TEST(ManifestViewTest, DeltaWithoutBaseSliceIsAGap) {
  ManifestView view(2);
  // No slice was ever fetched for shard 1: even a "first" delta cannot
  // apply (there is no base to chain from).
  EXPECT_FALSE(view.ApplyDelta(AddDelta(1, 0, 1, Span(1, 1, 3))));
  EXPECT_FALSE(view.known(1));
}

TEST(ManifestViewTest, StaleFetchRacingPublishNeverRegresses) {
  ManifestView view(1);
  view.InstallSlice(0, 5, {Span(1, 1, 3), Span(4, 10, 2)});
  // A fetch issued before a publish lands late, describing epoch 4.
  // The current slice must not move backward — but the late reply is
  // still a correct description of epoch 4, so it joins the history
  // and translates answers computed at that epoch.
  view.InstallSlice(0, 4, {Span(1, 1, 3)});
  EXPECT_EQ(view.epoch(0), 5u);
  auto through_history = view.ToGlobal(0, 4, 2);
  ASSERT_TRUE(through_history.ok());
  EXPECT_EQ(*through_history, 2u);
  auto current = view.ToGlobal(0, 5, 5);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(*current, 11u);
}

TEST(ManifestViewTest, HistoryDepthBoundsTranslatableEpochs) {
  ManifestView view(1, /*history_depth=*/2);
  view.InstallSlice(0, 1, {Span(1, 1, 1)});
  for (uint64_t e = 2; e <= 5; ++e) {
    ASSERT_TRUE(view.ApplyDelta(AddDelta(
        0, e - 1, e, Span(1 + (e - 1), 1 + (e - 1), 1))));
  }
  EXPECT_EQ(view.epoch(0), 5u);
  // Depth 2 keeps epochs 4 and 3; epochs 2 and 1 have aged out.
  EXPECT_TRUE(view.ToGlobal(0, 4, 1).ok());
  EXPECT_TRUE(view.ToGlobal(0, 3, 1).ok());
  auto aged = view.ToGlobal(0, 1, 1);
  ASSERT_FALSE(aged.ok());
  EXPECT_TRUE(aged.status().IsUnavailable());
}

TEST(ManifestViewTest, InconsistentAddDeltaIsRejectedNotApplied) {
  ManifestView view(1);
  view.InstallSlice(0, 1, {Span(1, 1, 4)});
  // An add whose span overlaps the held slice contradicts it — apply
  // would corrupt every later translation. Refuse and force a fetch.
  EXPECT_FALSE(view.ApplyDelta(AddDelta(0, 1, 2, Span(3, 3, 2))));
  EXPECT_EQ(view.epoch(0), 1u);
  // A remove of a document the slice never had is equally inconsistent.
  EXPECT_FALSE(view.ApplyDelta(RemoveDelta(0, 1, 2, Span(9, 99, 1))));
  EXPECT_EQ(view.epoch(0), 1u);
}

TEST(ManifestViewTest, NextGlobalSpansAllShards) {
  ManifestView view(3);
  view.InstallSlice(0, 1, {Span(1, 1, 3)});
  view.InstallSlice(2, 4, {Span(1, 30, 5)});
  // Shard 1 is still unknown; NextGlobal covers what IS known.
  EXPECT_EQ(view.NextGlobal(), 35u);
  uint32_t shard = 0;
  DocSpan span;
  ASSERT_TRUE(view.FindDocument(30, &shard, &span));
  EXPECT_EQ(shard, 2u);
}

}  // namespace
}  // namespace approxql::cluster
