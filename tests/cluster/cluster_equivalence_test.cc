// End-to-end manifest-sync equivalence: a live ShardRouter over real
// mutable shard servers (TCP loopback, kManifestDelta subscriptions)
// must serve BIT-IDENTICAL answers to an in-process oracle built from
// exactly the acked documents — while the cluster mutates between and
// during queries. This is the distributed counterpart of the
// mutable-corpus equivalence tests: the moving parts proven here are
// epoch tagging, delta application, fetch-on-stale reconciliation,
// cluster-global id assignment, and read-your-writes floors.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_config.h"
#include "cluster/manifest_view.h"
#include "cost/cost_model.h"
#include "dist/shard_router.h"
#include "engine/database.h"
#include "gen/query_generator.h"
#include "ingest/mutable_corpus.h"
#include "net/server.h"
#include "net/wire.h"
#include "service/query_service.h"
#include "util/random.h"

namespace approxql::cluster {
namespace {

using dist::RouterOptions;
using dist::ShardRouter;
using engine::Database;
using engine::ExecOptions;
using engine::QueryAnswer;
using engine::Strategy;
using ingest::MutableCorpus;
using net::Server;
using net::ServerOptions;
using net::WireIngest;
using service::QueryService;
using service::ServiceOptions;

cost::CostModel TestModel() {
  cost::CostModel model;
  for (int i = 0; i < 8; ++i) {
    model.SetDeleteCost(NodeType::kStruct, "elem" + std::to_string(i),
                        static_cast<cost::Cost>(2 + (i * 3) % 7));
    model.SetDeleteCost(NodeType::kText, "term" + std::to_string(i),
                        static_cast<cost::Cost>(1 + (i * 5) % 6));
  }
  return model;
}

/// Small nested documents over the elem*/term* space, deterministic in
/// the rng — rich enough that generated tree patterns hit approximate
/// matches across documents.
std::string MakeDoc(util::Rng& rng) {
  std::string xml;
  size_t budget = static_cast<size_t>(rng.UniformInt(4, 14));
  std::function<void(size_t)> emit = [&](size_t depth) {
    const std::string label =
        "elem" + std::to_string(rng.UniformInt(0, 7));
    xml += "<" + label + ">";
    while (budget > 0 && rng.UniformInt(0, 2) != 0) {
      --budget;
      if (depth >= 3 || rng.UniformInt(0, 1) == 0) {
        xml += "term" + std::to_string(rng.UniformInt(0, 7)) + " ";
      } else {
        emit(depth + 1);
      }
    }
    xml += "</" + label + ">";
  };
  emit(0);
  return xml;
}

std::string Canonical(const std::vector<QueryAnswer>& answers) {
  std::string out;
  for (const auto& answer : answers) {
    out += std::to_string(answer.root) + ":" + std::to_string(answer.cost) +
           ";";
  }
  return out;
}

/// One mutable cluster shard-server process-equivalent: a single-shard
/// MutableCorpus served in shard mode with the static CLUSTER
/// fingerprint (the corpus's own fingerprint is epoch-salted).
struct ClusterNode {
  std::unique_ptr<MutableCorpus> corpus;
  std::unique_ptr<QueryService> service;
  std::unique_ptr<Server> server;

  uint16_t port() const { return server->port(); }
  void Stop() {
    if (server) server->Shutdown(/*drain=*/false);
    server.reset();
    service.reset();
    corpus.reset();
  }
};

class ClusterEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("approxql_cluster_eq_test_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override {
    if (router_) router_->Shutdown();
    router_.reset();
    for (auto& node : nodes_) node.Stop();
    nodes_.clear();
    std::filesystem::remove_all(dir_);
  }

  ClusterNode StartNode(size_t index, size_t cluster_width,
                        uint16_t port = 0) {
    MutableCorpus::Options options;
    options.data_dir = dir_ + "/node" + std::to_string(index);
    options.num_shards = 1;
    options.model = TestModel();
    options.store_kind = storage::StoreKind::kDisk;
    auto corpus = MutableCorpus::Open(std::move(options));
    EXPECT_TRUE(corpus.ok()) << corpus.status();
    ClusterNode node;
    node.corpus = std::move(corpus).value();
    node.service = std::make_unique<QueryService>(
        *node.corpus, ServiceOptions{.num_threads = 1});
    ServerOptions server_options;
    server_options.port = port;
    server_options.shard.enabled = true;
    server_options.shard.fingerprint =
        ClusterFingerprint(TestModel(), cluster_width);
    server_options.shard.shard_index = static_cast<uint32_t>(index);
    node.server =
        std::make_unique<Server>(*node.service, *node.corpus, server_options);
    EXPECT_TRUE(node.server->Start().ok());
    return node;
  }

  void StartCluster(size_t width, bool subscribe = true) {
    for (size_t i = 0; i < width; ++i) {
      nodes_.push_back(StartNode(i, width));
    }
    ClusterConfig config;
    config.model = TestModel();
    config.num_shards = width;
    RouterOptions options;
    for (const auto& node : nodes_) {
      options.shards.push_back({"127.0.0.1", node.port()});
    }
    options.connect_timeout_ms = 500;
    options.attempt_deadline_ms = 2000;
    options.max_retries = 2;
    options.health_period_ms = 50;
    options.ping_deadline_ms = 500;
    options.manifest_subscribe = subscribe;
    router_ = std::make_unique<ShardRouter>(config, std::move(options));
    ASSERT_TRUE(router_->Start().ok());
    ASSERT_TRUE(router_->live());
  }

  /// Adds one generated document through the router and mirrors it in
  /// the acked oracle inputs. Returns the ack.
  net::WireIngestAck AddOne() {
    WireIngest op;
    op.op = WireIngest::Op::kAdd;
    op.xml = MakeDoc(doc_rng_);
    auto ack = router_->Ingest(op, /*deadline_ms=*/5000);
    EXPECT_TRUE(ack.ok()) << ack.status();
    if (ack.ok()) {
      acked_.push_back(op.xml);
      if (ack->shard_index < floors_.size()) {
        floors_[ack->shard_index] =
            std::max(floors_[ack->shard_index], ack->epoch);
      }
    }
    return ack.ok() ? *ack : net::WireIngestAck{};
  }

  /// The single-node oracle: cluster-global ids are assigned
  /// sequentially in ack order, so a Database built from the acked
  /// documents in that order reproduces the cluster's id space exactly.
  Database Oracle() {
    auto db = Database::BuildFromXml(acked_, TestModel());
    EXPECT_TRUE(db.ok()) << db.status();
    return std::move(db).value();
  }

  std::vector<std::string> MakeQueries(const Database& db, size_t count) {
    gen::QueryGenOptions options;
    options.seed = 7321;
    gen::QueryGenerator generator(db, options);
    std::vector<std::string> queries;
    constexpr std::string_view kPatterns[] = {gen::kPattern1, gen::kPattern2,
                                              gen::kPattern3};
    for (size_t i = 0; i < count; ++i) {
      auto generated = generator.Generate(kPatterns[i % 3]);
      if (generated.ok()) queries.push_back(std::move(generated->text));
    }
    EXPECT_FALSE(queries.empty());
    return queries;
  }

  /// Routed answers (with the accumulated read-your-writes floors) must
  /// be bit-identical to the oracle for every query and both real
  /// strategies.
  void ExpectEquivalent(const Database& oracle,
                        const std::vector<std::string>& queries) {
    for (const std::string& query : queries) {
      for (Strategy strategy : {Strategy::kSchema, Strategy::kDirect}) {
        ExecOptions exec;
        exec.n = 10;
        exec.strategy = strategy;
        auto expected = oracle.Execute(query, exec);
        ASSERT_TRUE(expected.ok()) << expected.status();
        auto routed = router_->Execute(query, strategy, 10,
                                       /*deadline_ms=*/10000, floors_);
        ASSERT_TRUE(routed.ok()) << routed.status();
        EXPECT_FALSE(routed->degraded);
        EXPECT_EQ(Canonical(routed->answers), Canonical(*expected))
            << query << " strategy "
            << (strategy == Strategy::kSchema ? "schema" : "direct");
      }
    }
  }

  std::string dir_;
  util::Rng doc_rng_{991};
  std::vector<ClusterNode> nodes_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::string> acked_;
  std::vector<uint64_t> floors_;
};

class ClusterWidthTest : public ClusterEquivalenceTest,
                         public ::testing::WithParamInterface<size_t> {};

TEST_P(ClusterWidthTest, RoutedAnswersBitIdenticalUnderLiveIngest) {
  const size_t width = GetParam();
  StartCluster(width);
  floors_.assign(width, 0);
  // Three ingest rounds; after each, routed answers must equal the
  // acked oracle's — the router's view has to keep up with every
  // publish through deltas alone (no query-path fetch needed, but
  // either path must land on identical bits).
  std::vector<std::string> queries;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 8; ++i) AddOne();
    Database oracle = Oracle();
    if (queries.empty()) queries = MakeQueries(oracle, 6);
    ExpectEquivalent(oracle, queries);
  }
  // The whole run must be failure-clean: a fingerprint mismatch (the
  // epoch-salted corpus fingerprint leaking into the cluster stamp)
  // would surface as a permanent shard failure.
  const std::string dump = router_->DumpMetrics();
  EXPECT_NE(dump.find("dist_shard_failures 0"), std::string::npos) << dump;
}

INSTANTIATE_TEST_SUITE_P(Widths, ClusterWidthTest,
                         ::testing::Values(1u, 2u, 4u));

TEST_F(ClusterEquivalenceTest, StaleViewReconcilesThroughFetchNotGuessing)
{
  // Subscriptions off: the router's slices go stale after every ingest,
  // so every translation initially fails Unavailable at the answer's
  // (newer) epoch and Execute must reconcile by re-fetching the slice —
  // never by translating through the stale spans.
  StartCluster(2, /*subscribe=*/false);
  floors_.assign(2, 0);
  for (int i = 0; i < 10; ++i) AddOne();
  Database oracle = Oracle();
  const auto queries = MakeQueries(oracle, 4);
  ExpectEquivalent(oracle, queries);
  const std::string dump = router_->DumpMetrics();
  // The reconciliation path really ran: fetches happened (ingest
  // id-assignment also fetches) and no delta was ever applied.
  EXPECT_NE(dump.find("dist_manifest_fetches"), std::string::npos);
  EXPECT_NE(dump.find("dist_manifest_deltas 0"), std::string::npos) << dump;
}

TEST_F(ClusterEquivalenceTest, RemovesTranslateThroughShiftedSlices) {
  StartCluster(2);
  floors_.assign(2, 0);
  std::vector<net::WireIngestAck> acks;
  for (int i = 0; i < 10; ++i) acks.push_back(AddOne());
  // Remove three documents spread across both servers by their GLOBAL
  // roots (live acks carry cluster-global ids). The oracle becomes a
  // single-shard MutableCorpus replaying the surviving history with
  // AddDocumentAt — BuildFromXml cannot represent the permanent id
  // holes a remove leaves behind.
  MutableCorpus::Options oracle_options;
  oracle_options.data_dir = dir_ + "/oracle";
  oracle_options.num_shards = 1;
  oracle_options.model = TestModel();
  auto oracle = MutableCorpus::Open(std::move(oracle_options));
  ASSERT_TRUE(oracle.ok()) << oracle.status();
  for (size_t i = 0; i < acked_.size(); ++i) {
    auto added = (*oracle)->AddDocumentAt(acked_[i], acks[i].doc_root);
    ASSERT_TRUE(added.ok()) << added.status();
  }
  for (size_t victim : {1u, 4u, 7u}) {
    WireIngest remove;
    remove.op = WireIngest::Op::kRemove;
    remove.doc_root = acks[victim].doc_root;
    auto ack = router_->Ingest(remove, 5000);
    ASSERT_TRUE(ack.ok()) << ack.status();
    if (ack->shard_index < floors_.size()) {
      floors_[ack->shard_index] =
          std::max(floors_[ack->shard_index], ack->epoch);
    }
    auto removed = (*oracle)->RemoveDocument(acks[victim].doc_root);
    ASSERT_TRUE(removed.ok()) << removed.status();
  }
  // Removing an id nobody holds: typed NOT_FOUND through the live
  // manifest lookup, not a guess.
  WireIngest missing;
  missing.op = WireIngest::Op::kRemove;
  missing.doc_root = 999999;
  auto not_found = router_->Ingest(missing, 5000);
  ASSERT_FALSE(not_found.ok());
  EXPECT_TRUE(not_found.status().IsNotFound()) << not_found.status();

  auto snapshot = (*oracle)->snapshot();
  const auto queries = MakeQueries(Oracle(), 4);
  for (const std::string& query : queries) {
    for (Strategy strategy : {Strategy::kSchema, Strategy::kDirect}) {
      shard::ScatterOptions scatter;
      ExecOptions exec;
      exec.n = 10;
      exec.strategy = strategy;
      auto expected = snapshot->Execute(query, exec, scatter);
      ASSERT_TRUE(expected.ok()) << expected.status();
      auto routed =
          router_->Execute(query, strategy, 10, /*deadline_ms=*/10000,
                           floors_);
      ASSERT_TRUE(routed.ok()) << routed.status();
      EXPECT_EQ(Canonical(routed->answers), Canonical(*expected)) << query;
    }
  }
}

TEST_F(ClusterEquivalenceTest, MinEpochFloorAboveClusterStateFailsTyped) {
  StartCluster(1);
  floors_.assign(1, 0);
  for (int i = 0; i < 3; ++i) AddOne();
  Database oracle = Oracle();
  const auto queries = MakeQueries(oracle, 1);
  // A floor the cluster can actually satisfy: served, bit-identical.
  ExpectEquivalent(oracle, queries);
  // A floor beyond any published epoch can NEVER be satisfied: the
  // router must re-query until its rounds are exhausted and fail the
  // shard rather than serve an answer below the caller's floor.
  std::vector<uint64_t> impossible{floors_[0] + 1000};
  auto routed = router_->Execute(queries[0], Strategy::kSchema, 10,
                                 /*deadline_ms=*/5000, impossible);
  ASSERT_FALSE(routed.ok());
  EXPECT_TRUE(routed.status().IsUnavailable()) << routed.status();
}

TEST_F(ClusterEquivalenceTest, RestartedServerResyncsEpochAndAnswers) {
  StartCluster(2);
  floors_.assign(2, 0);
  for (int i = 0; i < 8; ++i) AddOne();
  Database oracle = Oracle();
  const auto queries = MakeQueries(oracle, 4);
  ExpectEquivalent(oracle, queries);

  // Hard-stop node 1 (its WAL is the only durable state), bring it back
  // on the same port, and wait for the health probe to revive it.
  const uint16_t port1 = nodes_[1].port();
  nodes_[1].Stop();
  nodes_[1] = StartNode(1, 2, port1);
  for (int i = 0;
       i < 500 && router_->shard_health(1) != dist::ShardHealth::kUp; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(router_->shard_health(1), dist::ShardHealth::kUp);

  // Recovery restores the documents AND the epoch; the revived pong
  // triggers a slice refetch, after which answers are bit-identical
  // again — including documents that lived on the restarted server.
  ExpectEquivalent(oracle, queries);
  // And the cluster keeps ingesting across the restart: new adds land
  // with fresh global ids (the router resyncs its id-space high-water
  // mark from the fetched slices).
  for (int i = 0; i < 4; ++i) AddOne();
  ExpectEquivalent(Oracle(), queries);
}

}  // namespace
}  // namespace approxql::cluster
