// Property: any DOM the writer can produce parses back into a
// structurally identical DOM, for randomly generated documents covering
// nesting, attributes, mixed content and special characters.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "util/random.h"
#include "xml/xml_dom.h"

namespace approxql::xml {
namespace {

const char* const kNames[] = {"alpha", "b", "data-set", "x_1", "ns:tag"};
const char* const kTextPieces[] = {
    "plain words",  "with & ampersand", "less < than",   "greater > than",
    "\"quotes\"",   "'apostrophes'",    "tabs\tand\nnewlines",
    "unicode \xC3\xA9\xE2\x82\xAC",     "1 < 2 && 3 > 2",
};

std::unique_ptr<XmlElement> RandomElement(util::Rng& rng, int depth) {
  auto element = std::make_unique<XmlElement>();
  element->name = kNames[rng.Uniform(5)];
  size_t attrs = rng.Uniform(3);
  for (size_t i = 0; i < attrs; ++i) {
    XmlAttribute attr;
    attr.name = std::string(kNames[rng.Uniform(5)]) + std::to_string(i);
    attr.value = kTextPieces[rng.Uniform(9)];
    element->attributes.push_back(std::move(attr));
  }
  if (depth < 4) {
    size_t children = rng.Uniform(4);
    bool last_was_text = false;  // adjacent text runs coalesce on parse
    for (size_t i = 0; i < children; ++i) {
      if (!last_was_text && rng.Bernoulli(0.4)) {
        element->children.emplace_back(
            std::string(kTextPieces[rng.Uniform(9)]));
        last_was_text = true;
      } else {
        element->children.emplace_back(RandomElement(rng, depth + 1));
        last_was_text = false;
      }
    }
  }
  return element;
}

bool ElementsEqual(const XmlElement& a, const XmlElement& b) {
  if (a.name != b.name || a.attributes.size() != b.attributes.size() ||
      a.children.size() != b.children.size()) {
    return false;
  }
  for (size_t i = 0; i < a.attributes.size(); ++i) {
    if (a.attributes[i].name != b.attributes[i].name ||
        a.attributes[i].value != b.attributes[i].value) {
      return false;
    }
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    const auto* ea = std::get_if<std::unique_ptr<XmlElement>>(&a.children[i]);
    const auto* eb = std::get_if<std::unique_ptr<XmlElement>>(&b.children[i]);
    if ((ea == nullptr) != (eb == nullptr)) return false;
    if (ea != nullptr) {
      if (!ElementsEqual(**ea, **eb)) return false;
    } else if (std::get<std::string>(a.children[i]) !=
               std::get<std::string>(b.children[i])) {
      return false;
    }
  }
  return true;
}

class XmlRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(XmlRoundTripTest, WriteParseWrite) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  for (int i = 0; i < 20; ++i) {
    std::unique_ptr<XmlElement> original = RandomElement(rng, 0);
    std::string written = WriteXml(*original);
    auto parsed = ParseXmlDocument(written);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << written;
    EXPECT_TRUE(ElementsEqual(*original, *parsed->root)) << written;
    // Idempotence: writing the parsed DOM gives the same bytes.
    EXPECT_EQ(WriteXml(*parsed->root), written);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace approxql::xml
