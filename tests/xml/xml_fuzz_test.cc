// Robustness: the XML parser must never crash or hang on corrupted
// input — every mutation of a valid document either parses or returns a
// clean ParseError.
#include <gtest/gtest.h>

#include <string>

#include "doc/data_tree.h"
#include "util/random.h"
#include "xml/xml_dom.h"

namespace approxql::xml {
namespace {

constexpr std::string_view kSeedDocs[] = {
    "<catalog><cd id=\"1\" genre='classical'><title>Piano &amp; Forte"
    "</title><!-- note --><composer>Rachmaninov</composer></cd></catalog>",
    "<?xml version=\"1.0\"?><!DOCTYPE a [ <!ELEMENT a (b)> ]>"
    "<a><![CDATA[raw <bytes> &here;]]><b x=\"&#65;\"/></a>",
    "<a>&lt;&gt;&amp;&quot;&apos;&#x41;<b/><c>mixed <d/> content</c></a>",
};

class XmlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(XmlFuzzTest, MutatedInputNeverCrashes) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 48271 + 11);
  for (int round = 0; round < 400; ++round) {
    std::string doc(kSeedDocs[rng.Uniform(3)]);
    // 1-6 random mutations: byte flips, deletions, duplications, splices.
    size_t mutations = 1 + rng.Uniform(6);
    for (size_t m = 0; m < mutations && !doc.empty(); ++m) {
      size_t pos = rng.Uniform(doc.size());
      switch (rng.Uniform(4)) {
        case 0:
          doc[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:
          doc.erase(pos, 1 + rng.Uniform(4));
          break;
        case 2:
          doc.insert(pos, doc.substr(rng.Uniform(doc.size()),
                                     rng.Uniform(8)));
          break;
        case 3: {
          const char* bits[] = {"<", ">", "&", "<!--", "]]>", "<?", "\"",
                                "&#", "</"};
          doc.insert(pos, bits[rng.Uniform(9)]);
          break;
        }
      }
    }
    // Must terminate and either succeed or fail cleanly.
    auto parsed = ParseXmlDocument(doc);
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsParseError()) << parsed.status();
    } else {
      // If it parsed, the writer output must re-parse (well-formedness).
      auto again = ParseXmlDocument(WriteXml(*parsed->root));
      EXPECT_TRUE(again.ok()) << again.status();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest, ::testing::Range(0, 8));

// The data-tree deserializer gets the same treatment.
TEST(DataTreeFuzzTest, MutatedBlobNeverCrashes) {
  doc::DataTreeBuilder builder;
  ASSERT_TRUE(builder
                  .AddDocumentXml("<a><b>one two</b><c x='3'>four</c>"
                                  "<b><d>five</d></b></a>")
                  .ok());
  auto tree = std::move(builder).Build(cost::CostModel());
  ASSERT_TRUE(tree.ok());
  std::string blob;
  tree->Serialize(&blob);
  util::Rng rng(17);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = blob;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    // Either a clean failure or a tree that passes basic sanity.
    auto restored = doc::DataTree::Deserialize(mutated, cost::CostModel());
    if (restored.ok()) {
      for (doc::NodeId id = 1; id < restored->size(); ++id) {
        EXPECT_LT(restored->node(id).parent, id);
        EXPECT_GE(restored->node(id).bound, id);
      }
    }
  }
}

}  // namespace
}  // namespace approxql::xml
