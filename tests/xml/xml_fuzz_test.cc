// Robustness: the XML parser must never crash or hang on corrupted
// input — every mutation of a valid document either parses or returns a
// clean ParseError. The mutated bytes run through the shared fuzz/
// entry points (fuzz::FuzzXmlParser, fuzz::FuzzDataTree) — the same
// contract checks libFuzzer drives under -DAPPROXQL_FUZZ=ON — plus the
// domain assertions that need the parse result in hand.
#include <gtest/gtest.h>

#include <string>

#include "doc/data_tree.h"
#include "fuzz/targets.h"
#include "util/random.h"
#include "xml/xml_dom.h"

namespace approxql::xml {
namespace {

constexpr std::string_view kSeedDocs[] = {
    "<catalog><cd id=\"1\" genre='classical'><title>Piano &amp; Forte"
    "</title><!-- note --><composer>Rachmaninov</composer></cd></catalog>",
    "<?xml version=\"1.0\"?><!DOCTYPE a [ <!ELEMENT a (b)> ]>"
    "<a><![CDATA[raw <bytes> &here;]]><b x=\"&#65;\"/></a>",
    "<a>&lt;&gt;&amp;&quot;&apos;&#x41;<b/><c>mixed <d/> content</c></a>",
};

class XmlFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(XmlFuzzTest, MutatedInputNeverCrashes) {
  util::Rng rng(static_cast<uint64_t>(GetParam()) * 48271 + 11);
  for (int round = 0; round < 400; ++round) {
    std::string doc(kSeedDocs[rng.Uniform(3)]);
    // 1-6 random mutations: byte flips, deletions, duplications, splices.
    size_t mutations = 1 + rng.Uniform(6);
    for (size_t m = 0; m < mutations && !doc.empty(); ++m) {
      size_t pos = rng.Uniform(doc.size());
      switch (rng.Uniform(4)) {
        case 0:
          doc[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:
          doc.erase(pos, 1 + rng.Uniform(4));
          break;
        case 2:
          doc.insert(pos, doc.substr(rng.Uniform(doc.size()),
                                     rng.Uniform(8)));
          break;
        case 3: {
          const char* bits[] = {"<", ">", "&", "<!--", "]]>", "<?", "\"",
                                "&#", "</"};
          doc.insert(pos, bits[rng.Uniform(9)]);
          break;
        }
      }
    }
    // The shared entry point asserts the full contract: clean error or
    // a DOM whose serialization is a re-parse fixed point.
    EXPECT_EQ(fuzz::FuzzXmlParser(
                  reinterpret_cast<const uint8_t*>(doc.data()), doc.size()),
              0);
    // Domain assertion on top: failures must be typed ParseErrors.
    auto parsed = ParseXmlDocument(doc);
    if (!parsed.ok()) {
      EXPECT_TRUE(parsed.status().IsParseError()) << parsed.status();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlFuzzTest, ::testing::Range(0, 8));

// The data-tree deserializer gets the same treatment.
TEST(DataTreeFuzzTest, MutatedBlobNeverCrashes) {
  doc::DataTreeBuilder builder;
  ASSERT_TRUE(builder
                  .AddDocumentXml("<a><b>one two</b><c x='3'>four</c>"
                                  "<b><d>five</d></b></a>")
                  .ok());
  auto tree = std::move(builder).Build(cost::CostModel());
  ASSERT_TRUE(tree.ok());
  std::string blob;
  tree->Serialize(&blob);
  util::Rng rng(17);
  for (int round = 0; round < 2000; ++round) {
    std::string mutated = blob;
    size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = static_cast<char>(rng.Uniform(256));
    // The shared entry point asserts clean failure, or structural
    // sanity (parent/bound invariants) plus a serialize fixed point.
    EXPECT_EQ(fuzz::FuzzDataTree(
                  reinterpret_cast<const uint8_t*>(mutated.data()),
                  mutated.size()),
              0);
  }
}

}  // namespace
}  // namespace approxql::xml
