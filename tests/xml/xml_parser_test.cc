#include "xml/xml_parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace approxql::xml {
namespace {

using util::Status;

/// Records SAX events as readable strings for assertions.
class EventRecorder : public XmlHandler {
 public:
  Status OnStartElement(std::string_view name,
                        const std::vector<XmlAttribute>& attrs) override {
    std::string event = "start:" + std::string(name);
    for (const auto& attr : attrs) {
      event += " " + attr.name + "=" + attr.value;
    }
    events.push_back(event);
    return Status::OK();
  }
  Status OnEndElement(std::string_view name) override {
    events.push_back("end:" + std::string(name));
    return Status::OK();
  }
  Status OnCharacters(std::string_view text) override {
    events.push_back("text:" + std::string(text));
    return Status::OK();
  }

  std::vector<std::string> events;
};

std::vector<std::string> Parse(std::string_view xml, Status* status = nullptr) {
  EventRecorder recorder;
  Status s = ParseXml(xml, &recorder);
  if (status != nullptr) *status = s;
  return recorder.events;
}

TEST(XmlParserTest, SimpleElement) {
  Status s;
  auto events = Parse("<cd>text</cd>", &s);
  ASSERT_TRUE(s.ok()) << s;
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], "start:cd");
  EXPECT_EQ(events[1], "text:text");
  EXPECT_EQ(events[2], "end:cd");
}

TEST(XmlParserTest, NestedElements) {
  Status s;
  auto events = Parse("<cd><title>Piano</title><composer>Rachmaninov"
                      "</composer></cd>",
                      &s);
  ASSERT_TRUE(s.ok()) << s;
  std::vector<std::string> expected = {
      "start:cd",    "start:title",    "text:Piano",       "end:title",
      "start:composer", "text:Rachmaninov", "end:composer", "end:cd"};
  EXPECT_EQ(events, expected);
}

TEST(XmlParserTest, SelfClosingTag) {
  Status s;
  auto events = Parse("<a><b/><c x='1'/></a>", &s);
  ASSERT_TRUE(s.ok()) << s;
  std::vector<std::string> expected = {"start:a", "start:b",     "end:b",
                                       "start:c x=1", "end:c", "end:a"};
  EXPECT_EQ(events, expected);
}

TEST(XmlParserTest, Attributes) {
  Status s;
  auto events = Parse(R"(<cd id="42" genre='classical'>x</cd>)", &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(events[0], "start:cd id=42 genre=classical");
}

TEST(XmlParserTest, AttributeEntities) {
  Status s;
  auto events = Parse(R"(<a t="&lt;x&gt; &amp; &quot;y&quot; &apos;"/>)", &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(events[0], "start:a t=<x> & \"y\" '");
}

TEST(XmlParserTest, TextEntities) {
  Status s;
  auto events = Parse("<a>fish &amp; chips &lt;cheap&gt;</a>", &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(events[1], "text:fish & chips <cheap>");
}

TEST(XmlParserTest, NumericCharacterReferences) {
  Status s;
  auto events = Parse("<a>&#65;&#x42;&#xE9;</a>", &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(events[1], "text:AB\xC3\xA9");
}

TEST(XmlParserTest, CdataSection) {
  Status s;
  auto events = Parse("<a><![CDATA[<not> & parsed]]></a>", &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(events[1], "text:<not> & parsed");
}

TEST(XmlParserTest, CommentsSkipped) {
  Status s;
  auto events = Parse("<!-- head --><a><!-- inside -->x</a><!-- tail -->", &s);
  ASSERT_TRUE(s.ok()) << s;
  std::vector<std::string> expected = {"start:a", "text:x", "end:a"};
  EXPECT_EQ(events, expected);
}

TEST(XmlParserTest, PrologAndDoctype) {
  Status s;
  Parse("<?xml version=\"1.0\"?><!DOCTYPE catalog [ <!ELEMENT cd (#PCDATA)> ]>"
        "<catalog/>",
        &s);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(XmlParserTest, ProcessingInstructionInside) {
  Status s;
  auto events = Parse("<a>x<?php echo ?>y</a>", &s);
  ASSERT_TRUE(s.ok()) << s;
  // PI flushes text, so two runs.
  std::vector<std::string> expected = {"start:a", "text:x", "text:y", "end:a"};
  EXPECT_EQ(events, expected);
}

TEST(XmlParserTest, Utf8BomAccepted) {
  Status s;
  Parse("\xEF\xBB\xBF<a/>", &s);
  EXPECT_TRUE(s.ok()) << s;
}

TEST(XmlParserTest, DeeplyNestedDoesNotOverflow) {
  // The parser loop is iterative, but consumers of the SAX events build
  // recursive structures, so nesting past the depth limit is rejected —
  // cleanly, without touching the call stack. 100k-deep input must
  // produce a parse error, not a crash.
  std::string xml;
  for (int i = 0; i < 100000; ++i) xml += "<d>";
  for (int i = 0; i < 100000; ++i) xml += "</d>";
  Status s;
  Parse(xml, &s);
  ASSERT_TRUE(s.IsParseError()) << s;
  EXPECT_NE(s.message().find("depth limit"), std::string::npos) << s;
}

TEST(XmlParserTest, NestingAtDepthLimitParses) {
  // 512 levels is the documented maximum; exactly at the cap still parses.
  std::string xml;
  for (int i = 0; i < 512; ++i) xml += "<d>";
  for (int i = 0; i < 512; ++i) xml += "</d>";
  Status s;
  auto events = Parse(xml, &s);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(events.size(), 2u * 512);
}

TEST(XmlParserTest, NestingPastDepthLimitRejected) {
  std::string xml;
  for (int i = 0; i < 513; ++i) xml += "<d>";
  for (int i = 0; i < 513; ++i) xml += "</d>";
  Status s;
  Parse(xml, &s);
  ASSERT_TRUE(s.IsParseError()) << s;
  EXPECT_NE(s.message().find("depth limit"), std::string::npos) << s;
}

// --- failure injection ---

TEST(XmlParserErrorTest, MismatchedTags) {
  Status s;
  Parse("<a><b></a></b>", &s);
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("mismatched"), std::string::npos);
}

TEST(XmlParserErrorTest, UnclosedElement) {
  Status s;
  Parse("<a><b>", &s);
  EXPECT_TRUE(s.IsParseError());
}

TEST(XmlParserErrorTest, ContentAfterRoot) {
  Status s;
  Parse("<a/><b/>", &s);
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("after root"), std::string::npos);
}

TEST(XmlParserErrorTest, EmptyInput) {
  Status s;
  Parse("", &s);
  EXPECT_TRUE(s.IsParseError());
}

TEST(XmlParserErrorTest, BareText) {
  Status s;
  Parse("just text", &s);
  EXPECT_TRUE(s.IsParseError());
}

TEST(XmlParserErrorTest, UnknownEntity) {
  Status s;
  Parse("<a>&nbsp;</a>", &s);
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("nbsp"), std::string::npos);
}

TEST(XmlParserErrorTest, InvalidCharacterReference) {
  Status s;
  Parse("<a>&#xZZ;</a>", &s);
  EXPECT_TRUE(s.IsParseError());
  Parse("<a>&#1114112;</a>", &s);  // > 0x10FFFF
  EXPECT_TRUE(s.IsParseError());
  Parse("<a>&#xD800;</a>", &s);  // surrogate
  EXPECT_TRUE(s.IsParseError());
}

TEST(XmlParserErrorTest, DuplicateAttribute) {
  Status s;
  Parse("<a x='1' x='2'/>", &s);
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("duplicate"), std::string::npos);
}

TEST(XmlParserErrorTest, UnquotedAttribute) {
  Status s;
  Parse("<a x=1/>", &s);
  EXPECT_TRUE(s.IsParseError());
}

TEST(XmlParserErrorTest, LessThanInAttribute) {
  Status s;
  Parse("<a x='<'/>", &s);
  EXPECT_TRUE(s.IsParseError());
}

TEST(XmlParserErrorTest, UnterminatedComment) {
  Status s;
  Parse("<a><!-- no end </a>", &s);
  EXPECT_TRUE(s.IsParseError());
}

TEST(XmlParserErrorTest, DoubleDashInComment) {
  Status s;
  Parse("<a><!-- x -- y --></a>", &s);
  EXPECT_TRUE(s.IsParseError());
}

TEST(XmlParserErrorTest, UnterminatedCdata) {
  Status s;
  Parse("<a><![CDATA[ x </a>", &s);
  EXPECT_TRUE(s.IsParseError());
}

TEST(XmlParserErrorTest, ErrorsReportLineNumbers) {
  Status s;
  Parse("<a>\n\n<b>\n</wrong>\n</a>", &s);
  ASSERT_TRUE(s.IsParseError());
  EXPECT_NE(s.message().find("line 4"), std::string::npos) << s;
}

TEST(XmlEscapeTest, TextEscaping) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeText("plain"), "plain");
}

TEST(XmlEscapeTest, AttributeEscaping) {
  EXPECT_EQ(EscapeAttribute("say \"hi\" & <go>"),
            "say &quot;hi&quot; &amp; &lt;go>");
}

}  // namespace
}  // namespace approxql::xml
