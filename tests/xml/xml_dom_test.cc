#include "xml/xml_dom.h"

#include <gtest/gtest.h>

namespace approxql::xml {
namespace {

TEST(XmlDomTest, BuildsTree) {
  auto doc = ParseXmlDocument(
      "<catalog><cd id=\"1\"><title>Piano Concerto</title>"
      "<composer>Rachmaninov</composer></cd></catalog>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const XmlElement& root = *doc->root;
  EXPECT_EQ(root.name, "catalog");
  ASSERT_EQ(root.CountChildElements(), 1u);
  const XmlElement* cd = root.FindChild("cd");
  ASSERT_NE(cd, nullptr);
  const std::string* id = cd->FindAttribute("id");
  ASSERT_NE(id, nullptr);
  EXPECT_EQ(*id, "1");
  const XmlElement* title = cd->FindChild("title");
  ASSERT_NE(title, nullptr);
  EXPECT_EQ(title->Text(), "Piano Concerto");
  EXPECT_EQ(cd->FindChild("absent"), nullptr);
  EXPECT_EQ(cd->FindAttribute("absent"), nullptr);
}

TEST(XmlDomTest, MixedContentTextConcatenation) {
  auto doc = ParseXmlDocument("<p>one <b>bold</b> two</p>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->Text(), "one  two");
  ASSERT_EQ(doc->root->children.size(), 3u);
}

TEST(XmlDomTest, CdataCoalescedWithText) {
  auto doc = ParseXmlDocument("<a>x<![CDATA[&y]]>z</a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root->children.size(), 1u);
  EXPECT_EQ(doc->root->Text(), "x&yz");
}

TEST(XmlDomTest, ParseErrorPropagates) {
  auto doc = ParseXmlDocument("<a><b></a>");
  EXPECT_FALSE(doc.ok());
  EXPECT_TRUE(doc.status().IsParseError());
}

TEST(XmlDomTest, WriteRoundTrip) {
  const std::string xml =
      "<catalog><cd id=\"1\"><title>Adagio &amp; Fugue</title></cd>"
      "<cd id=\"2\"/></catalog>";
  auto doc = ParseXmlDocument(xml);
  ASSERT_TRUE(doc.ok());
  std::string written = WriteXml(*doc->root);
  auto doc2 = ParseXmlDocument(written);
  ASSERT_TRUE(doc2.ok()) << doc2.status() << " in: " << written;
  EXPECT_EQ(WriteXml(*doc2->root), written);
}

TEST(XmlDomTest, WriteEscapesSpecials) {
  XmlElement element;
  element.name = "a";
  element.attributes.push_back({"t", "x\"<&"});
  element.children.emplace_back(std::string("1 < 2 & 3 > 2"));
  std::string written = WriteXml(element);
  EXPECT_EQ(written, "<a t=\"x&quot;&lt;&amp;\">1 &lt; 2 &amp; 3 &gt; 2</a>");
  auto round = ParseXmlDocument(written);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->root->Text(), "1 < 2 & 3 > 2");
}

TEST(XmlDomTest, PrettyPrinting) {
  auto doc = ParseXmlDocument("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  WriteOptions options;
  options.pretty = true;
  EXPECT_EQ(WriteXml(*doc->root, options), "<a>\n  <b>\n    <c/>\n  </b>\n</a>");
}

TEST(XmlDomTest, DeclarationHeader) {
  XmlElement element;
  element.name = "a";
  WriteOptions options;
  options.declaration = true;
  EXPECT_EQ(WriteXml(element, options),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
}

}  // namespace
}  // namespace approxql::xml
