// Corpus regression replay: every checked-in seed and crasher under
// fuzz/corpus/<target>/ runs through its registered fuzz entry point in
// the PLAIN build, on every tier-1 run, on every compiler. A target
// crashing or tripping an APPROXQL_FUZZ_ASSERT here is the same failure
// libFuzzer would report under -DAPPROXQL_FUZZ=ON — this is the
// no-clang-required leg of the fuzzing subsystem (DESIGN.md §15).
//
// APPROXQL_FUZZ_CORPUS_DIR is injected by tests/CMakeLists.txt and
// points at the source-tree corpus, so new seeds take effect without
// reconfiguring.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "fuzz/registry.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace approxql {
namespace {

namespace fs = std::filesystem;

std::vector<uint8_t> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

std::map<std::string, std::vector<fs::path>> CorpusByTarget() {
  std::map<std::string, std::vector<fs::path>> corpus;
  const fs::path root(APPROXQL_FUZZ_CORPUS_DIR);
  for (const auto& dir : fs::directory_iterator(root)) {
    if (!dir.is_directory()) continue;
    auto& files = corpus[dir.path().filename().string()];
    for (const auto& entry : fs::directory_iterator(dir.path())) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  return corpus;
}

// Every registered target must have at least one checked-in seed, and
// every corpus directory must correspond to a registered target —
// catches renames that silently orphan a corpus.
TEST(FuzzCorpusTest, EveryTargetHasSeedsAndEveryCorpusHasTarget) {
  auto corpus = CorpusByTarget();
  for (const auto& target : fuzz::AllTargets()) {
    auto it = corpus.find(target.name);
    ASSERT_NE(it, corpus.end()) << "no corpus directory for fuzz target '"
                                << target.name << "'";
    EXPECT_FALSE(it->second.empty())
        << "corpus for '" << target.name << "' has no seed files";
    corpus.erase(it);
  }
  for (const auto& [name, files] : corpus) {
    ADD_FAILURE() << "corpus directory '" << name
                  << "' has no registered fuzz target (stale rename?)";
  }
}

// Replay every corpus file verbatim. Any crash/abort fails the test
// binary loudly; a zero return is all the contract requires.
TEST(FuzzCorpusTest, ReplaysEveryCorpusFile) {
  int replayed = 0;
  auto corpus = CorpusByTarget();
  for (const auto& target : fuzz::AllTargets()) {
    for (const auto& path : corpus[target.name]) {
      SCOPED_TRACE(path.string());
      const auto bytes = ReadFile(path);
      EXPECT_EQ(target.fn(bytes.data(), bytes.size()), 0);
      ++replayed;
    }
  }
  EXPECT_GE(replayed, 30) << "corpus suspiciously small; regenerate with "
                             "fuzz_gen_seeds";
}

// Deterministic mutation sweep: bit flips, truncations, and splices of
// the seeds, seeded per (target, file, round) so failures reproduce.
// Not a substitute for coverage-guided fuzzing — a cheap always-on
// probe that the decoders stay total near the valid-input manifold.
TEST(FuzzCorpusTest, MutatedSeedsStillSatisfyContracts) {
  constexpr int kRoundsPerFile = 16;
  auto corpus = CorpusByTarget();
  for (const auto& target : fuzz::AllTargets()) {
    const auto& files = corpus[target.name];
    for (size_t f = 0; f < files.size(); ++f) {
      const auto seed_bytes = ReadFile(files[f]);
      // Deep-nesting crashers are large and mutation adds nothing.
      if (seed_bytes.size() > 64 * 1024) continue;
      for (int round = 0; round < kRoundsPerFile; ++round) {
        util::Rng rng(0x5eed0000 + 1315423911u * static_cast<uint32_t>(f) +
                      2654435761u * static_cast<uint32_t>(round) +
                      static_cast<uint32_t>(target.name[0]));
        std::vector<uint8_t> bytes = seed_bytes;
        switch (round % 4) {
          case 0:  // flip a handful of bits
            for (int i = 0; i < 8 && !bytes.empty(); ++i) {
              size_t pos = rng.UniformInt(0, bytes.size() - 1);
              bytes[pos] ^= uint8_t{1} << rng.UniformInt(0, 7);
            }
            break;
          case 1:  // truncate
            if (!bytes.empty()) {
              bytes.resize(rng.UniformInt(0, bytes.size() - 1));
            }
            break;
          case 2:  // overwrite a window with random bytes
            for (int i = 0; i < 16 && !bytes.empty(); ++i) {
              bytes[rng.UniformInt(0, bytes.size() - 1)] =
                  static_cast<uint8_t>(rng.Next());
            }
            break;
          default:  // splice the seed onto a copy of itself
            bytes.insert(bytes.end(), seed_bytes.begin(),
                         seed_bytes.begin() +
                             static_cast<ptrdiff_t>(seed_bytes.size() / 2));
            break;
        }
        SCOPED_TRACE(files[f].string() + " round " + std::to_string(round));
        EXPECT_EQ(target.fn(bytes.data(), bytes.size()), 0);
      }
    }
  }
}

}  // namespace
}  // namespace approxql
