// Cross-module integration: synthetic collection -> database -> file
// persistence -> reload -> queries via every strategy, stream and
// explain, with strategy-equivalence checks on realistic data shapes.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "engine/database.h"
#include "gen/query_generator.h"
#include "gen/xml_generator.h"

namespace approxql {
namespace {

using engine::Database;
using engine::ExecOptions;
using engine::Strategy;

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen::XmlGenOptions options;
    options.seed = 77;
    options.total_elements = 5000;
    options.element_names = 30;
    options.vocabulary = 500;
    options.words_per_element = 5.0;
    options.template_nodes = 60;
    gen::XmlGenerator generator(options);
    cost::CostModel model;
    model.set_default_insert_cost(1);
    auto tree = generator.GenerateTree(model);
    APPROXQL_CHECK(tree.ok());
    auto built = Database::FromDataTree(std::move(tree).value(), model);
    APPROXQL_CHECK(built.ok());
    db_ = new Database(std::move(built).value());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  static Database* db_;
};

Database* IntegrationTest::db_ = nullptr;

TEST_F(IntegrationTest, GeneratedQueriesAgreeAcrossStrategies) {
  gen::QueryGenOptions q_options;
  q_options.seed = 5;
  q_options.renamings_per_label = 3;
  gen::QueryGenerator qgen(*db_, q_options);
  int compared = 0;
  for (std::string_view pattern : {gen::kPattern1, gen::kPattern2}) {
    for (int i = 0; i < 4; ++i) {
      auto generated = qgen.Generate(pattern);
      ASSERT_TRUE(generated.ok());
      ExecOptions direct;
      direct.strategy = Strategy::kDirect;
      direct.n = 20;
      direct.cost_model = &generated->cost_model;
      auto a = db_->Execute(generated->query, direct);
      ASSERT_TRUE(a.ok());
      ExecOptions schema = direct;
      schema.strategy = Strategy::kSchema;
      engine::SchemaEvalStats stats;
      schema.schema_stats_out = &stats;
      auto b = db_->Execute(generated->query, schema);
      ASSERT_TRUE(b.ok());
      if (!stats.k_capped) {
        ASSERT_EQ(a->size(), b->size()) << generated->text;
        ++compared;
      }
      for (size_t j = 0; j < std::min(a->size(), b->size()); ++j) {
        EXPECT_EQ((*a)[j].cost, (*b)[j].cost) << generated->text;
      }
    }
  }
  EXPECT_GT(compared, 0) << "every query hit the k cap; weaken the data";
}

TEST_F(IntegrationTest, PersistenceRoundTripAtScale) {
  std::string path = (std::filesystem::temp_directory_path() /
                      ("approxql_integration_" + std::to_string(::getpid())))
                         .string();
  std::filesystem::remove(path);
  ASSERT_TRUE(db_->Save(path).ok());
  auto loaded = Database::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->tree().size(), db_->tree().size());
  EXPECT_EQ(loaded->schema().size(), db_->schema().size());

  gen::QueryGenOptions q_options;
  q_options.seed = 9;
  q_options.renamings_per_label = 2;
  gen::QueryGenerator qgen(*db_, q_options);
  for (int i = 0; i < 3; ++i) {
    auto generated = qgen.Generate(gen::kPattern2);
    ASSERT_TRUE(generated.ok());
    ExecOptions options;
    options.n = 10;
    options.cost_model = &generated->cost_model;
    for (Strategy strategy : {Strategy::kDirect, Strategy::kSchema}) {
      options.strategy = strategy;
      auto a = db_->Execute(generated->query, options);
      auto b = loaded->Execute(generated->query, options);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a->size(), b->size()) << generated->text;
      for (size_t j = 0; j < a->size(); ++j) {
        EXPECT_EQ((*a)[j].root, (*b)[j].root);
        EXPECT_EQ((*a)[j].cost, (*b)[j].cost);
      }
    }
  }
  // The saved file is a valid store of non-trivial size.
  EXPECT_GT(std::filesystem::file_size(path), 10 * 4096u);
  std::filesystem::remove(path);
}

TEST_F(IntegrationTest, StreamMatchesBatchOnSyntheticData) {
  gen::QueryGenOptions q_options;
  q_options.seed = 21;
  q_options.renamings_per_label = 2;
  gen::QueryGenerator qgen(*db_, q_options);
  auto generated = qgen.Generate(gen::kPattern1);
  ASSERT_TRUE(generated.ok());
  ExecOptions options;
  options.n = 15;
  options.cost_model = &generated->cost_model;
  auto batch = db_->Execute(generated->query, options);
  ASSERT_TRUE(batch.ok());
  auto stream = db_->ExecuteStream(generated->query, options);
  ASSERT_TRUE(stream.ok());
  size_t pulled = 0;
  cost::Cost last = 0;
  while (pulled < batch->size()) {
    auto next = stream->Next();
    ASSERT_TRUE(next.has_value()) << generated->text;
    EXPECT_GE(next->cost, last);
    last = next->cost;
    EXPECT_EQ(next->cost, (*batch)[pulled].cost);
    ++pulled;
  }
}

TEST_F(IntegrationTest, ExplainCoversResults) {
  gen::QueryGenOptions q_options;
  q_options.seed = 33;
  q_options.renamings_per_label = 1;
  gen::QueryGenerator qgen(*db_, q_options);
  auto generated = qgen.Generate(gen::kPattern1);
  ASSERT_TRUE(generated.ok());
  ExecOptions options;
  options.n = 20;
  options.cost_model = &generated->cost_model;
  auto explanations = db_->Explain(generated->text, options);
  ASSERT_TRUE(explanations.ok()) << explanations.status();
  for (size_t i = 1; i < explanations->size(); ++i) {
    EXPECT_GE((*explanations)[i].cost, (*explanations)[i - 1].cost);
  }
}

TEST_F(IntegrationTest, ConcurrentQueriesAreSafe) {
  // Execute() is const and every call builds its own evaluator, so
  // read-only parallel querying must be race-free and deterministic.
  gen::QueryGenOptions q_options;
  q_options.seed = 55;
  q_options.renamings_per_label = 2;
  gen::QueryGenerator qgen(*db_, q_options);
  std::vector<gen::GeneratedQuery> queries;
  for (int i = 0; i < 6; ++i) {
    auto generated = qgen.Generate(gen::kPattern1);
    ASSERT_TRUE(generated.ok());
    queries.push_back(std::move(generated).value());
  }
  // Reference results, single-threaded.
  std::vector<std::vector<engine::QueryAnswer>> expected;
  for (const auto& generated : queries) {
    ExecOptions options;
    options.n = 10;
    options.cost_model = &generated.cost_model;
    auto answers = db_->Execute(generated.query, options);
    ASSERT_TRUE(answers.ok());
    expected.push_back(std::move(answers).value());
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      for (int round = 0; round < 20; ++round) {
        size_t qi = static_cast<size_t>(t + round) % queries.size();
        ExecOptions options;
        options.strategy =
            (t + round) % 2 == 0 ? Strategy::kDirect : Strategy::kSchema;
        options.n = 10;
        options.cost_model = &queries[qi].cost_model;
        auto answers = db_->Execute(queries[qi].query, options);
        if (!answers.ok() || answers->size() != expected[qi].size()) {
          ++mismatches;
          continue;
        }
        for (size_t i = 0; i < answers->size(); ++i) {
          if ((*answers)[i].cost != expected[qi][i].cost) ++mismatches;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(IntegrationTest, MaterializedResultsParseBack) {
  gen::QueryGenOptions q_options;
  q_options.seed = 41;
  gen::QueryGenerator qgen(*db_, q_options);
  auto generated = qgen.Generate(gen::kPattern1);
  ASSERT_TRUE(generated.ok());
  ExecOptions options;
  options.n = 5;
  options.cost_model = &generated->cost_model;
  auto answers = db_->Execute(generated->query, options);
  ASSERT_TRUE(answers.ok());
  for (const auto& answer : *answers) {
    std::string xml = db_->MaterializeXml(answer.root);
    auto parsed = xml::ParseXmlDocument(xml);
    EXPECT_TRUE(parsed.ok()) << xml.substr(0, 200);
  }
}

}  // namespace
}  // namespace approxql
