#include "util/crc32.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/random.h"

namespace approxql::util {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(Crc32c(std::string_view("")), 0x00000000u);
  EXPECT_EQ(Crc32c(std::string_view("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32Test, SensitiveToEveryBit) {
  std::string data(64, 'a');
  uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 1);
    EXPECT_NE(Crc32c(mutated), base) << "byte " << i;
  }
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t part = Crc32c(data.substr(0, split));
    uint32_t chained = Crc32c(data.substr(split), part);
    EXPECT_EQ(chained, whole) << "split " << split;
  }
}

TEST(Crc32Test, RandomizedSplitBufferChainingMatchesOneShot) {
  // Incremental CRC over arbitrarily fragmented buffers (the frame
  // decoder's situation) must equal the one-shot checksum.
  Rng rng(0xc4c32c);
  for (int trial = 0; trial < 100; ++trial) {
    std::string data(1 + rng.Uniform(4096), '\0');
    for (char& c : data) c = static_cast<char>(rng.Uniform(256));
    const uint32_t whole = Crc32c(data);

    // Cut the buffer into a random number of random-length pieces.
    std::vector<size_t> cuts = {0, data.size()};
    const size_t pieces = 1 + rng.Uniform(8);
    for (size_t i = 1; i < pieces; ++i) {
      cuts.push_back(rng.Uniform(data.size() + 1));
    }
    std::sort(cuts.begin(), cuts.end());

    uint32_t chained = 0;
    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      std::string_view piece(data.data() + cuts[i], cuts[i + 1] - cuts[i]);
      chained = Crc32c(piece, chained);
    }
    ASSERT_EQ(chained, whole) << "trial " << trial;
  }
}

TEST(Crc32Test, RandomizedBitFlipAlwaysDetected) {
  Rng rng(31337);
  for (int trial = 0; trial < 200; ++trial) {
    std::string data(1 + rng.Uniform(512), '\0');
    for (char& c : data) c = static_cast<char>(rng.Uniform(256));
    const uint32_t base = Crc32c(data);
    std::string mutated = data;
    const size_t byte = rng.Uniform(mutated.size());
    const int bit = static_cast<int>(rng.Uniform(8));
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
    EXPECT_NE(Crc32c(mutated), base)
        << "flip of bit " << bit << " in byte " << byte << " undetected";
  }
}

}  // namespace
}  // namespace approxql::util
