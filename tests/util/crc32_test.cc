#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace approxql::util {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32C test vectors.
  EXPECT_EQ(Crc32c(std::string_view("")), 0x00000000u);
  EXPECT_EQ(Crc32c(std::string_view("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32Test, SensitiveToEveryBit) {
  std::string data(64, 'a');
  uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    std::string mutated = data;
    mutated[i] = static_cast<char>(mutated[i] ^ 1);
    EXPECT_NE(Crc32c(mutated), base) << "byte " << i;
  }
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data);
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t part = Crc32c(data.substr(0, split));
    uint32_t chained = Crc32c(data.substr(split), part);
    EXPECT_EQ(chained, whole) << "split " << split;
  }
}

}  // namespace
}  // namespace approxql::util
