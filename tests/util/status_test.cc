#include "util/status.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace approxql::util {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such label");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "no such label");
  EXPECT_EQ(s.ToString(), "NotFound: no such label");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IoError("x"), Status::IoError("x"));
  EXPECT_FALSE(Status::IoError("x") == Status::IoError("y"));
  EXPECT_FALSE(Status::IoError("x") == Status::Corruption("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInvalidArgument),
            "InvalidArgument");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "ParseError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::ParseError("bad token"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsParseError());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  RETURN_IF_ERROR(FailIfNegative(x));
  return x * 2;
}

Result<int> Chain(int x) {
  ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(ResultTest, MacrosPropagate) {
  auto ok = Chain(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);

  auto err = Chain(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace approxql::util
