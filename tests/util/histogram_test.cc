#include "util/histogram.h"

#include <gtest/gtest.h>

namespace approxql::util {
namespace {

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ExactAggregates) {
  Histogram h;
  for (uint64_t v : {3u, 1u, 4u, 1u, 5u, 9u, 2u, 6u}) h.Record(v);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.sum(), 31u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 9u);
  EXPECT_DOUBLE_EQ(h.Mean(), 31.0 / 8.0);
}

TEST(HistogramTest, QuantileBoundedRelativeError) {
  // Sub-bucket width is 1/4 of the power-of-two range, so any quantile
  // of identical recorded values lies within 25% of the true value.
  for (uint64_t value : {7u, 100u, 1000u, 123456u, 99999999u}) {
    Histogram h;
    for (int i = 0; i < 100; ++i) h.Record(value);
    for (double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
      double estimate = h.Quantile(q);
      EXPECT_GE(estimate, static_cast<double>(value) * 0.75) << value;
      EXPECT_LE(estimate, static_cast<double>(value) * 1.25) << value;
    }
  }
}

TEST(HistogramTest, QuantileOrdering) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  double p10 = h.Quantile(0.10);
  double p50 = h.Quantile(0.50);
  double p99 = h.Quantile(0.99);
  EXPECT_LT(p10, p50);
  EXPECT_LT(p50, p99);
  // The uniform 1..1000 distribution pins quantiles near their rank.
  EXPECT_NEAR(p50, 500.0, 150.0);
  EXPECT_NEAR(p99, 990.0, 250.0);
}

TEST(HistogramTest, QuantileNeverOutsideRecordedRange) {
  Histogram h;
  h.Record(17);
  h.Record(90);
  EXPECT_GE(h.Quantile(0.0), 17.0);
  EXPECT_LE(h.Quantile(1.0), 90.0);
}

TEST(HistogramTest, MergeMatchesCombinedRecording) {
  Histogram a, b, combined;
  for (uint64_t v = 0; v < 500; ++v) {
    (v % 2 == 0 ? a : b).Record(v * 7);
    combined.Record(v * 7);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.Quantile(q), combined.Quantile(q));
  }
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h;
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, HugeValuesSaturateWithoutOverflow) {
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(h.min(), 0u);
}

TEST(HistogramTest, SummaryContainsFields) {
  Histogram h;
  for (uint64_t v = 1; v <= 10; ++v) h.Record(v);
  std::string summary = h.Summary("us");
  EXPECT_NE(summary.find("count=10"), std::string::npos);
  EXPECT_NE(summary.find("p50="), std::string::npos);
  EXPECT_NE(summary.find("p99="), std::string::npos);
  EXPECT_NE(summary.find("max=10us"), std::string::npos);
}

}  // namespace
}  // namespace approxql::util
