#include "util/string_util.h"

#include <gtest/gtest.h>

namespace approxql::util {
namespace {

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("Piano Concerto No.2"), "piano concerto no.2");
  EXPECT_EQ(AsciiToLower(""), "");
  EXPECT_EQ(AsciiToLower("ALL-CAPS_123"), "all-caps_123");
}

TEST(StringUtilTest, SplitWordsBasic) {
  auto words = SplitWords("Piano concerto, No. 2!");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "piano");
  EXPECT_EQ(words[1], "concerto");
  EXPECT_EQ(words[2], "no");
  EXPECT_EQ(words[3], "2");
}

TEST(StringUtilTest, SplitWordsEmptyAndPunctOnly) {
  EXPECT_TRUE(SplitWords("").empty());
  EXPECT_TRUE(SplitWords("  ,.;:!?  ").empty());
}

TEST(StringUtilTest, SplitView) {
  auto parts = SplitView("a#b##c", '#');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitView("", '#').size(), 1u);
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hello \t\n"), "hello");
  EXPECT_EQ(StripWhitespace("hello"), "hello");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringUtilTest, IsBlank) {
  EXPECT_TRUE(IsBlank(""));
  EXPECT_TRUE(IsBlank(" \t\r\n"));
  EXPECT_FALSE(IsBlank(" x "));
}

TEST(StringUtilTest, ParseUint64) {
  uint64_t v = 0;
  EXPECT_TRUE(ParseUint64("0", &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(ParseUint64("18446744073709551615", &v));
  EXPECT_EQ(v, UINT64_MAX);
  EXPECT_FALSE(ParseUint64("18446744073709551616", &v));  // overflow
  EXPECT_FALSE(ParseUint64("", &v));
  EXPECT_FALSE(ParseUint64("12a", &v));
  EXPECT_FALSE(ParseUint64("-1", &v));
}

TEST(StringUtilTest, ParseDouble) {
  double d = 0;
  EXPECT_TRUE(ParseDouble("3.5", &d));
  EXPECT_DOUBLE_EQ(d, 3.5);
  EXPECT_TRUE(ParseDouble("7", &d));
  EXPECT_DOUBLE_EQ(d, 7.0);
  EXPECT_FALSE(ParseDouble("x", &d));
  EXPECT_FALSE(ParseDouble("", &d));
  EXPECT_FALSE(ParseDouble("-2", &d));  // costs are non-negative
  EXPECT_FALSE(ParseDouble("3.5x", &d));
}

}  // namespace
}  // namespace approxql::util
