#include "util/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/random.h"

namespace approxql::util {
namespace {

TEST(VarintTest, RoundTripSmall) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    VarintReader reader(buf);
    uint64_t out = 0;
    ASSERT_TRUE(reader.GetVarint64(&out).ok());
    EXPECT_EQ(out, v);
    EXPECT_TRUE(reader.empty());
  }
}

TEST(VarintTest, RoundTripBoundaries) {
  std::vector<uint64_t> values;
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(1ULL << shift);
    values.push_back((1ULL << shift) - 1);
  }
  values.push_back(std::numeric_limits<uint64_t>::max());
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  VarintReader reader(buf);
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(reader.GetVarint64(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(reader.empty());
}

TEST(VarintTest, EncodingLength) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

TEST(VarintTest, TruncatedFailsWithCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    VarintReader reader(std::string_view(buf).substr(0, cut));
    uint64_t out = 0;
    Status s = reader.GetVarint64(&out);
    EXPECT_TRUE(s.IsCorruption()) << "cut=" << cut;
  }
}

TEST(VarintTest, OverlongEncodingRejected) {
  // Eleven continuation bytes exceed the 64-bit budget.
  std::string buf(11, static_cast<char>(0x80));
  VarintReader reader(buf);
  uint64_t out = 0;
  EXPECT_TRUE(reader.GetVarint64(&out).IsCorruption());
}

TEST(VarintTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 33);
  VarintReader reader(buf);
  uint32_t out = 0;
  EXPECT_TRUE(reader.GetVarint32(&out).IsCorruption());
}

TEST(VarintTest, ZigZagRoundTrip) {
  const int64_t kValues[] = {0,        1,       -1,
                             2,        -2,      1000000,
                             -1000000, std::numeric_limits<int64_t>::max(),
                             std::numeric_limits<int64_t>::min()};
  for (int64_t v : kValues) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes map to small codes.
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(VarintTest, RandomizedRoundTrip) {
  // Mixed stream of random values skewed toward encoding-length
  // boundaries, including max-length (10-byte) varints.
  Rng rng(0xdecafbad);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint64_t> values;
    const size_t count = 1 + rng.Uniform(64);
    for (size_t i = 0; i < count; ++i) {
      switch (rng.Uniform(4)) {
        case 0:  // uniform over the full 64-bit range (10-byte heavy)
          values.push_back(rng.Next());
          break;
        case 1:  // small values (1-2 bytes)
          values.push_back(rng.Uniform(16384));
          break;
        case 2:  // near an encoding-length boundary
          values.push_back((1ULL << (7 * (1 + rng.Uniform(9)))) -
                           1 + rng.Uniform(3));
          break;
        default:  // extremes
          values.push_back(rng.Uniform(2) == 0
                               ? std::numeric_limits<uint64_t>::max()
                               : 0);
      }
    }
    std::string buf;
    for (uint64_t v : values) PutVarint64(&buf, v);
    VarintReader reader(buf);
    for (uint64_t v : values) {
      uint64_t out = 0;
      ASSERT_TRUE(reader.GetVarint64(&out).ok());
      ASSERT_EQ(out, v);
    }
    EXPECT_TRUE(reader.empty());
  }
}

TEST(VarintTest, RandomizedTruncationAlwaysFailsCleanly) {
  // Any strict prefix of a single varint must fail with kCorruption —
  // never succeed, never read past the buffer.
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    std::string buf;
    PutVarint64(&buf, rng.Next() | (1ULL << 63));  // force 10 bytes
    const size_t cut = rng.Uniform(buf.size());
    VarintReader reader(std::string_view(buf).substr(0, cut));
    uint64_t out = 0;
    EXPECT_TRUE(reader.GetVarint64(&out).IsCorruption());
  }
}

TEST(VarintTest, RandomizedZigZagRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    const int64_t v = static_cast<int64_t>(rng.Next());
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
    // ZigZag through the varint layer, as the wire protocol does.
    std::string buf;
    PutVarint64(&buf, ZigZagEncode(v));
    VarintReader reader(buf);
    uint64_t raw = 0;
    ASSERT_TRUE(reader.GetVarint64(&raw).ok());
    EXPECT_EQ(ZigZagDecode(raw), v);
  }
}

TEST(VarintTest, GetBytes) {
  std::string buf = "abcdef";
  VarintReader reader(buf);
  std::string_view out;
  ASSERT_TRUE(reader.GetBytes(4, &out).ok());
  EXPECT_EQ(out, "abcd");
  EXPECT_TRUE(reader.GetBytes(3, &out).IsCorruption());
  ASSERT_TRUE(reader.GetBytes(2, &out).ok());
  EXPECT_EQ(out, "ef");
  EXPECT_TRUE(reader.empty());
}

}  // namespace
}  // namespace approxql::util
