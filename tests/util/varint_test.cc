#include "util/varint.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace approxql::util {
namespace {

TEST(VarintTest, RoundTripSmall) {
  for (uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 16383ULL, 16384ULL}) {
    std::string buf;
    PutVarint64(&buf, v);
    VarintReader reader(buf);
    uint64_t out = 0;
    ASSERT_TRUE(reader.GetVarint64(&out).ok());
    EXPECT_EQ(out, v);
    EXPECT_TRUE(reader.empty());
  }
}

TEST(VarintTest, RoundTripBoundaries) {
  std::vector<uint64_t> values;
  for (int shift = 0; shift < 64; ++shift) {
    values.push_back(1ULL << shift);
    values.push_back((1ULL << shift) - 1);
  }
  values.push_back(std::numeric_limits<uint64_t>::max());
  std::string buf;
  for (uint64_t v : values) PutVarint64(&buf, v);
  VarintReader reader(buf);
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(reader.GetVarint64(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(reader.empty());
}

TEST(VarintTest, EncodingLength) {
  std::string buf;
  PutVarint64(&buf, 127);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  PutVarint64(&buf, 128);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  EXPECT_EQ(buf.size(), 10u);
}

TEST(VarintTest, TruncatedFailsWithCorruption) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 40);
  for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
    VarintReader reader(std::string_view(buf).substr(0, cut));
    uint64_t out = 0;
    Status s = reader.GetVarint64(&out);
    EXPECT_TRUE(s.IsCorruption()) << "cut=" << cut;
  }
}

TEST(VarintTest, OverlongEncodingRejected) {
  // Eleven continuation bytes exceed the 64-bit budget.
  std::string buf(11, static_cast<char>(0x80));
  VarintReader reader(buf);
  uint64_t out = 0;
  EXPECT_TRUE(reader.GetVarint64(&out).IsCorruption());
}

TEST(VarintTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, 1ULL << 33);
  VarintReader reader(buf);
  uint32_t out = 0;
  EXPECT_TRUE(reader.GetVarint32(&out).IsCorruption());
}

TEST(VarintTest, ZigZagRoundTrip) {
  const int64_t kValues[] = {0,        1,       -1,
                             2,        -2,      1000000,
                             -1000000, std::numeric_limits<int64_t>::max(),
                             std::numeric_limits<int64_t>::min()};
  for (int64_t v : kValues) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes map to small codes.
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

TEST(VarintTest, GetBytes) {
  std::string buf = "abcdef";
  VarintReader reader(buf);
  std::string_view out;
  ASSERT_TRUE(reader.GetBytes(4, &out).ok());
  EXPECT_EQ(out, "abcd");
  EXPECT_TRUE(reader.GetBytes(3, &out).IsCorruption());
  ASSERT_TRUE(reader.GetBytes(2, &out).ok());
  EXPECT_EQ(out, "ef");
  EXPECT_TRUE(reader.empty());
}

}  // namespace
}  // namespace approxql::util
