#include "util/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace approxql::util {
namespace {

TEST(MutexTest, LockUnlockRoundTrip) {
  Mutex mu;
  mu.Lock();
  mu.Unlock();
  mu.Lock();
  mu.Unlock();
}

TEST(MutexTest, TryLockSucceedsWhenFree) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(MutexTest, TryLockFailsWhenHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  std::atomic<int> observed{-1};
  std::thread other([&] {
    // NO_THREAD_SAFETY_ANALYSIS not needed: TryLock's failure branch
    // leaves nothing held, and the analysis tracks that.
    if (mu.TryLock()) {
      observed.store(1);
      mu.Unlock();
    } else {
      observed.store(0);
    }
  });
  other.join();
  EXPECT_EQ(observed.load(), 0);
  mu.Unlock();
}

TEST(MutexTest, MutualExclusionUnderContention) {
  Mutex mu;
  // Deliberately non-atomic: only the mutex keeps this consistent. TSan
  // (the CI leg) would flag any exclusion failure as a data race; the
  // final count catches lost updates in every build flavor.
  int64_t counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, static_cast<int64_t>(kThreads) * kIncrements);
}

TEST(MutexTest, AdoptingMutexLockReleasesOnScopeExit) {
  Mutex mu;
  ASSERT_TRUE(mu.TryLock());
  {
    MutexLock lock(&mu, std::adopt_lock);
  }
  // If the adopting lock failed to release, this TryLock would fail.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mu);
    while (!ready) cv.Wait(&mu);
  });
  {
    MutexLock lock(&mu);
    ready = true;
  }
  cv.NotifyOne();
  waiter.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  std::atomic<int> woke{0};
  constexpr int kWaiters = 4;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mu);
      while (!go) cv.Wait(&mu);
      woke.fetch_add(1);
    });
  }
  {
    MutexLock lock(&mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& waiter : waiters) waiter.join();
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(&mu, std::chrono::milliseconds(5)));
}

TEST(CondVarTest, WaitForReturnsTrueOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  bool notified = false;
  {
    MutexLock lock(&mu);
    // Loop out spurious wakeups and the notify-before-wait race; the
    // generous budget only matters if the implementation is broken.
    while (!ready && !notified) {
      notified = cv.WaitFor(&mu, std::chrono::seconds(5));
    }
    EXPECT_TRUE(ready);
  }
  notifier.join();
}

/// Positive control for the negative-compile check in
/// tests/negative_compile/: the exact same GUARDED_BY shape, accessed
/// correctly, must build cleanly under -Wthread-safety -Werror.
class AnnotatedCounter {
 public:
  void Add(int delta) {
    MutexLock lock(&mu_);
    value_ += delta;
  }
  int Get() const {
    MutexLock lock(&mu_);
    return value_;
  }
  void AddLocked(int delta) REQUIRES(mu_) { value_ += delta; }
  Mutex* mu() RETURN_CAPABILITY(mu_) { return &mu_; }

 private:
  mutable Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotationsTest, AnnotatedGuardedAccessCompilesAndWorks) {
  AnnotatedCounter counter;
  counter.Add(2);
  {
    MutexLock lock(counter.mu());
    counter.AddLocked(3);
  }
  EXPECT_EQ(counter.Get(), 5);
}

}  // namespace
}  // namespace approxql::util
