#include "util/zipf.h"

#include <gtest/gtest.h>

#include <vector>

namespace approxql::util {
namespace {

TEST(ZipfTest, SingleRank) {
  ZipfDistribution zipf(1);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.Pmf(0), 1.0);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.0);
  double sum = 0;
  for (uint64_t i = 0; i < 100; ++i) sum += zipf.Pmf(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, PmfMonotonicallyDecreasing) {
  ZipfDistribution zipf(1000, 1.0);
  for (uint64_t i = 1; i < 1000; ++i) {
    EXPECT_LE(zipf.Pmf(i), zipf.Pmf(i - 1)) << "rank " << i;
  }
}

TEST(ZipfTest, RankZeroDominates) {
  // With theta=1 over n=100, the top rank holds ~1/H_100 ~ 19% of mass.
  ZipfDistribution zipf(100, 1.0);
  Rng rng(5);
  int rank0 = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) rank0 += zipf.Sample(rng) == 0 ? 1 : 0;
  EXPECT_NEAR(rank0 / static_cast<double>(kSamples), zipf.Pmf(0), 0.02);
}

TEST(ZipfTest, EmpiricalMatchesPmf) {
  ZipfDistribution zipf(10, 1.0);
  Rng rng(9);
  std::vector<int> counts(10, 0);
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(rng)];
  for (uint64_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(counts[r] / static_cast<double>(kSamples), zipf.Pmf(r), 0.01)
        << "rank " << r;
  }
}

TEST(ZipfTest, HigherThetaIsMoreSkewed) {
  ZipfDistribution flat(100, 0.5), steep(100, 2.0);
  EXPECT_GT(steep.Pmf(0), flat.Pmf(0));
  EXPECT_LT(steep.Pmf(99), flat.Pmf(99));
}

TEST(ZipfTest, SamplesInRange) {
  ZipfDistribution zipf(37, 1.2);
  Rng rng(21);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), 37u);
}

}  // namespace
}  // namespace approxql::util
