#include "util/random.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace approxql::util {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) should be close to 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace approxql::util
