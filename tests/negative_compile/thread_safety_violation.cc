// Negative-compile probe: this translation unit MUST FAIL to compile
// under `clang++ -Wthread-safety -Werror` — it reads and writes a
// GUARDED_BY member without holding the mutex. tests/CMakeLists.txt
// registers it (Clang only) as a ctest case with WILL_FAIL, so a
// toolchain or macro regression that silently turns the analysis into
// a no-op breaks CI instead of silently un-checking every annotation
// in the codebase.
//
// Keep this file minimal and self-contained: it must exercise exactly
// the annotation layer (util/mutex.h), not any module that happens to
// use it.
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace {

class Guarded {
 public:
  // VIOLATION: guarded write without holding mu_. The analysis reports
  // "writing variable 'value_' requires holding mutex 'mu_'".
  void UnguardedWrite(int v) { value_ = v; }

  // VIOLATION: guarded read without holding mu_.
  int UnguardedRead() const { return value_; }

 private:
  mutable approxql::util::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.UnguardedWrite(1);
  return g.UnguardedRead();
}
