// Regenerates the checked-in fuzz corpora (fuzz/corpus/<target>/...)
// deterministically from the library's own encoders. Two kinds of files:
//
//   seed-*   representative well-formed inputs, so coverage-guided runs
//            start from deep program states instead of garbage;
//   crash-*  regression inputs for found-and-fixed bugs (hostile counts,
//            pathological nesting). They must keep failing cleanly —
//            tests/fuzz/fuzz_corpus_test.cc replays everything here on
//            every tier-1 run.
//
// Usage: fuzz_gen_seeds [corpus-dir]   (default: fuzz/corpus)

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "index/label_index.h"
#include "net/wire.h"
#include "shard/layout_manifest.h"
#include "storage/vlog/value_log.h"
#include "storage/wal/wal.h"
#include "util/varint.h"

namespace {

namespace fs = std::filesystem;
using namespace approxql;  // NOLINT: generator tool, brevity wins

int g_files = 0;

void WriteSeed(const fs::path& root, const std::string& target,
               const std::string& name, std::string_view bytes) {
  const fs::path dir = root / target;
  fs::create_directories(dir);
  std::ofstream out(dir / name, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::cerr << "write failed: " << (dir / name) << "\n";
    std::exit(1);
  }
  ++g_files;
}

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

std::string PutString(std::string_view s) {
  std::string out;
  util::PutVarint64(&out, s.size());
  out += s;
  return out;
}

// One frame with the given type/payload, or exits on encode failure.
std::string Frame(uint64_t request_id, net::MessageType type,
                  std::string_view payload) {
  net::FrameHeader header;
  header.request_id = request_id;
  header.type = static_cast<uint32_t>(type);
  std::string out;
  if (!net::EncodeFrame(header, payload, &out).ok()) std::exit(1);
  return out;
}

constexpr uint64_t kHugeCount = uint64_t{1} << 40;

net::WireRequest SampleRequest() {
  net::WireRequest request;
  request.query = "cd[title and 'piano']";
  request.n = 10;
  request.parallelism = 2;
  request.deadline_ms = 250;
  request.min_epochs = {3, 0, 7};
  return request;
}

net::WireResponse SampleResponse() {
  net::WireResponse response;
  response.status_code = 0;
  response.degraded = true;
  response.missing_shards = {1};
  response.backend_epoch = 12;
  response.answers = {{0, 5, 2}, {3, 9, 2}};
  return response;
}

net::WireShardAnswer SampleShardAnswer() {
  net::WireShardAnswer answer;
  answer.fingerprint = 0xabcdef01;
  answer.shard_index = 2;
  answer.achieved_bound = 4;
  answer.backend_epoch = 9;
  answer.answers = {{0, 5, 0}, {2, 8, 0}};
  return answer;
}

net::WireManifestSlice SampleSlice() {
  net::WireManifestSlice slice;
  slice.shard_index = 1;
  slice.epoch = 5;
  slice.fingerprint = 0x1234;
  slice.spans = {{1, 1, 4}, {5, 9, 2}};
  return slice;
}

std::string ManifestPreamble() {
  std::string out;
  util::PutVarint32(&out, 0x41514c4d);  // kMagic in layout_manifest.cc
  util::PutVarint32(&out, 1);           // version
  util::PutVarint32(&out, 42);          // fingerprint
  out += PutString(cost::CostModel().ToConfigString());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? argv[1] : "fuzz/corpus";
  const fs::path tmp =
      fs::temp_directory_path() /
      ("approxql_gen_seeds_" + std::to_string(::getpid()));
  fs::create_directories(tmp);

  // --- frame_decoder ---
  {
    std::string pipelined;
    pipelined.push_back(static_cast<char>(0xff));  // chunk size 256
    pipelined += Frame(1, net::MessageType::kQueryRequest,
                       net::EncodeQueryRequest(SampleRequest()));
    pipelined += Frame(1, net::MessageType::kQueryResponse,
                       net::EncodeQueryResponse(SampleResponse()));
    WriteSeed(root, "frame_decoder", "seed-pipelined", pipelined);

    std::string split;
    split.push_back(2);  // chunk size 3: every frame arrives torn
    split += Frame(7, net::MessageType::kPing, "");
    split += Frame(0, net::MessageType::kManifestDelta,
                   net::EncodeManifestDelta({}));
    WriteSeed(root, "frame_decoder", "seed-split-frames", split);
  }

  // --- wire payload targets ---
  WriteSeed(root, "wire_query_request", "seed-basic",
            net::EncodeQueryRequest(net::WireRequest{}));
  WriteSeed(root, "wire_query_request", "seed-epochs",
            net::EncodeQueryRequest(SampleRequest()));
  {
    // Regression: min-epoch count claiming 2^40 entries (capped against
    // remaining payload since wire hardening).
    std::string hostile;
    hostile += PutString("a");
    util::PutVarint32(&hostile, 1);  // strategy kSchema
    util::PutVarint64(&hostile, 10);
    util::PutVarint32(&hostile, 1);
    util::PutVarint64(&hostile, 0);
    util::PutVarint32(&hostile, 0);
    util::PutVarint64(&hostile, kHugeCount);
    WriteSeed(root, "wire_query_request", "crash-huge-epoch-count", hostile);
  }

  WriteSeed(root, "wire_query_response", "seed-basic",
            net::EncodeQueryResponse(SampleResponse()));
  {
    std::string hostile;
    util::PutVarint32(&hostile, 0);
    hostile += PutString("");
    util::PutVarint32(&hostile, 0);
    util::PutVarint64(&hostile, 0);
    util::PutVarint64(&hostile, 7);
    util::PutVarint64(&hostile, kHugeCount);  // answer count
    WriteSeed(root, "wire_query_response", "crash-huge-answer-count", hostile);
  }

  {
    net::WireShardQuery query;
    query.query = "person[name and 'alan']";
    query.n = 5;
    query.cost_bound = 9;
    query.deadline_ms = 100;
    WriteSeed(root, "wire_shard_query", "seed-basic",
              net::EncodeShardQuery(query));
  }

  WriteSeed(root, "wire_shard_answer", "seed-basic",
            net::EncodeShardAnswer(SampleShardAnswer()));
  {
    std::string hostile;
    util::PutVarint32(&hostile, 0);
    hostile += PutString("");
    util::PutVarint32(&hostile, 0);
    util::PutVarint32(&hostile, 0);
    util::PutVarint64(&hostile, 0);
    util::PutVarint32(&hostile, 0);
    util::PutVarint64(&hostile, 0);
    util::PutVarint64(&hostile, kHugeCount);  // answer count
    WriteSeed(root, "wire_shard_answer", "crash-huge-answer-count", hostile);
  }

  {
    net::WirePong pong;
    pong.fingerprint = 0xfeed;
    pong.shard_index = 3;
    pong.epoch = 21;
    WriteSeed(root, "wire_pong", "seed-basic", net::EncodePong(pong));
  }

  {
    net::WireIngest add;
    add.op = net::WireIngest::Op::kAdd;
    add.xml = "<cd><title>Piano Concerto</title></cd>";
    add.assigned_global = 17;
    WriteSeed(root, "wire_ingest", "seed-add", net::EncodeIngest(add));
    net::WireIngest remove;
    remove.op = net::WireIngest::Op::kRemove;
    remove.doc_root = 17;
    WriteSeed(root, "wire_ingest", "seed-remove", net::EncodeIngest(remove));
  }

  {
    net::WireIngestAck ack;
    ack.seq = 4;
    ack.epoch = 11;
    ack.doc_root = 17;
    ack.shard_index = 1;
    ack.length = 6;
    WriteSeed(root, "wire_ingest_ack", "seed-basic",
              net::EncodeIngestAck(ack));
  }

  {
    net::WireManifestFetch fetch;
    WriteSeed(root, "wire_manifest_fetch", "seed-basic",
              net::EncodeManifestFetch(fetch));
    fetch.subscribe = true;
    WriteSeed(root, "wire_manifest_fetch", "seed-subscribe",
              net::EncodeManifestFetch(fetch));
  }

  WriteSeed(root, "wire_manifest_slice", "seed-basic",
            net::EncodeManifestSlice(SampleSlice()));
  {
    std::string hostile;
    util::PutVarint32(&hostile, 0);
    hostile += PutString("");
    util::PutVarint32(&hostile, 0);
    util::PutVarint64(&hostile, 0);
    util::PutVarint32(&hostile, 0);
    util::PutVarint64(&hostile, kHugeCount);  // span count
    WriteSeed(root, "wire_manifest_slice", "crash-huge-span-count", hostile);
  }

  {
    net::WireManifestDelta delta;
    delta.shard_index = 1;
    delta.prev_epoch = 5;
    delta.epoch = 6;
    delta.op = net::WireManifestDelta::Op::kAdd;
    delta.span = {7, 11, 4};
    WriteSeed(root, "wire_manifest_delta", "seed-add",
              net::EncodeManifestDelta(delta));
  }

  // --- layout_manifest ---
  {
    std::vector<std::vector<shard::DocSpan>> spans(2);
    spans[0] = {{1, 1, 5}, {6, 11, 3}};
    spans[1] = {{1, 6, 5}};
    shard::LayoutManifest manifest(7, cost::CostModel(), std::move(spans));
    WriteSeed(root, "layout_manifest", "seed-basic", manifest.Serialize());

    // Regressions for the allocation-before-validation bugs fixed with
    // the fuzz subsystem: tiny blobs claiming gigantic tables.
    std::string huge_shards = ManifestPreamble();
    util::PutVarint64(&huge_shards, kHugeCount);
    WriteSeed(root, "layout_manifest", "crash-huge-shard-count", huge_shards);

    std::string huge_spans = ManifestPreamble();
    util::PutVarint64(&huge_spans, 1);
    util::PutVarint64(&huge_spans, kHugeCount);
    WriteSeed(root, "layout_manifest", "crash-huge-span-count", huge_spans);

    std::string overlap = ManifestPreamble();
    util::PutVarint64(&overlap, 1);
    util::PutVarint64(&overlap, 2);
    for (uint32_t v : {1u, 1u, 5u, 3u, 10u, 5u}) {
      util::PutVarint32(&overlap, v);
    }
    WriteSeed(root, "layout_manifest", "crash-overlapping-spans", overlap);
  }

  // --- data_tree ---
  {
    doc::DataTreeBuilder builder;
    if (!builder
             .AddDocumentXml("<cd><title>Piano Concerto</title>"
                             "<composer>Rachmaninov</composer></cd>")
             .ok()) {
      return 1;
    }
    auto tree = std::move(builder).Build(cost::CostModel());
    if (!tree.ok()) return 1;
    std::string bytes;
    tree->Serialize(&bytes);
    WriteSeed(root, "data_tree", "seed-basic", bytes);

    // Regression: 2^30 claimed nodes (≈32 GB resize before the cap).
    std::string huge_nodes;
    util::PutVarint64(&huge_nodes, 0);
    util::PutVarint64(&huge_nodes, uint64_t{1} << 30);
    WriteSeed(root, "data_tree", "crash-huge-node-count", huge_nodes);
  }

  // --- posting ---
  {
    std::string bytes;
    index::SerializePosting({1, 5, 9, 100}, &bytes);
    WriteSeed(root, "posting", "seed-basic", bytes);

    std::string huge;
    util::PutVarint64(&huge, kHugeCount);
    WriteSeed(root, "posting", "crash-huge-count", huge);

    // Regression: deltas that wrap the 32-bit id space.
    std::string wrap;
    util::PutVarint64(&wrap, 2);
    util::PutVarint32(&wrap, UINT32_MAX);
    util::PutVarint32(&wrap, 2);
    WriteSeed(root, "posting", "crash-id-wraparound", wrap);
  }

  // --- wal_replay (config must match the fuzz target's) ---
  {
    const std::string path = (tmp / "seed.wal").string();
    auto opened = storage::WriteAheadLog::Open(path, "fuzz-config");
    if (!opened.ok()) return 1;
    for (uint32_t type : {1u, 2u, 1u}) {
      if (!opened->wal->Append(type, "record-payload").ok()) return 1;
    }
    if (!opened->wal->Sync().ok()) return 1;
    opened->wal.reset();
    const std::string valid = ReadFile(path);
    WriteSeed(root, "wal_replay", "seed-valid", valid);
    WriteSeed(root, "wal_replay", "seed-torn-tail",
              valid + "\x7f\x01garbage");
  }

  // --- vlog_read (16-byte fuzz pointer + file bytes) ---
  {
    const std::string path = (tmp / "seed.vlog").string();
    auto opened = storage::ValueLog::Open(path);
    if (!opened.ok()) return 1;
    auto first = (*opened)->Append("hello posting bytes");
    auto second = (*opened)->Append("world");
    if (!first.ok() || !second.ok() || !(*opened)->Sync().ok()) return 1;
    opened->reset();
    const std::string file = ReadFile(path);
    std::string seed;
    for (uint64_t v : {first->offset, first->length}) {
      for (int i = 0; i < 8; ++i) {
        seed.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
      }
    }
    WriteSeed(root, "vlog_read", "seed-valid", seed + file);
    // Same file, pointer aimed past the end.
    std::string bogus(16, '\xee');
    WriteSeed(root, "vlog_read", "seed-bad-pointer", bogus + file);
  }

  // --- xml_parser ---
  WriteSeed(root, "xml_parser", "seed-basic",
            "<cd genre=\"classical\"><title>Piano Concerto No. 2"
            "</title><price currency=\"USD\">12</price></cd>");
  WriteSeed(root, "xml_parser", "seed-mixed",
            "<?xml version=\"1.0\"?><a><!-- c --><b x=\"1\">t&amp;t"
            "<![CDATA[raw <bytes>]]></b><c/>tail &#65;</a>");
  {
    // Regression: unbounded element depth drove recursive DOM
    // destruction pre-fix; now rejected at the parser's depth cap.
    std::string deep;
    for (int i = 0; i < 100000; ++i) deep += "<a>";
    WriteSeed(root, "xml_parser", "crash-deep-nesting", deep);
  }

  // --- approxql_parser ---
  WriteSeed(root, "approxql_parser", "seed-paper",
            "cd[title and 'piano']");
  WriteSeed(root, "approxql_parser", "seed-boolean",
            "a[b or (c and \"word\") or d[e and 'two words']]");
  {
    // Regression: unbounded recursive descent pre-fix; now a clean
    // ParseError at the nesting cap.
    std::string deep;
    for (int i = 0; i < 100000; ++i) deep += "a[";
    WriteSeed(root, "approxql_parser", "crash-deep-nesting", deep);
  }

  std::error_code ec;
  fs::remove_all(tmp, ec);
  std::cout << "wrote " << g_files << " corpus files under " << root << "\n";
  return 0;
}
