// Entry points of every fuzz target, one per untrusted-input boundary.
// Each is LLVMFuzzerTestOneInput-shaped (returns 0, never throws) and
// lives in fuzz/targets/<name>_fuzz.cc; the name ↔ function mapping is
// materialized in fuzz/registry.cc and mirrored by fuzz/targets.manifest
// (which tools/lint.py checks against the Decode*/Deserialize*/Replay*
// declarations in src/).
#ifndef APPROXQL_FUZZ_TARGETS_H_
#define APPROXQL_FUZZ_TARGETS_H_

#include <cstddef>
#include <cstdint>

namespace approxql::fuzz {

// Stream level: net::FrameDecoder over an adversarial TCP byte stream.
int FuzzFrameDecoder(const uint8_t* data, size_t size);

// Wire payload decoders (src/net/wire.h), one target per message type.
int FuzzWireQueryRequest(const uint8_t* data, size_t size);
int FuzzWireQueryResponse(const uint8_t* data, size_t size);
int FuzzWireShardQuery(const uint8_t* data, size_t size);
int FuzzWireShardAnswer(const uint8_t* data, size_t size);
int FuzzWirePong(const uint8_t* data, size_t size);
int FuzzWireIngest(const uint8_t* data, size_t size);
int FuzzWireIngestAck(const uint8_t* data, size_t size);
int FuzzWireManifestFetch(const uint8_t* data, size_t size);
int FuzzWireManifestSlice(const uint8_t* data, size_t size);
int FuzzWireManifestDelta(const uint8_t* data, size_t size);

// Persistence formats parsed off disk.
int FuzzLayoutManifest(const uint8_t* data, size_t size);
int FuzzDataTree(const uint8_t* data, size_t size);
int FuzzPosting(const uint8_t* data, size_t size);
int FuzzWalReplay(const uint8_t* data, size_t size);
int FuzzVlogRead(const uint8_t* data, size_t size);

// Text parsers fed by users and ingest.
int FuzzXmlParser(const uint8_t* data, size_t size);
int FuzzApproxqlParser(const uint8_t* data, size_t size);

}  // namespace approxql::fuzz

#endif  // APPROXQL_FUZZ_TARGETS_H_
