// Name -> entry-point registry over fuzz/targets.h, consumed by the
// plain-build corpus replay test. Names match the corpus directories
// (fuzz/corpus/<name>/), the executables (fuzz_<name>), and the first
// column of fuzz/targets.manifest.
#ifndef APPROXQL_FUZZ_REGISTRY_H_
#define APPROXQL_FUZZ_REGISTRY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace approxql::fuzz {

struct FuzzTarget {
  const char* name;
  int (*fn)(const uint8_t* data, size_t size);
};

const std::vector<FuzzTarget>& AllTargets();

}  // namespace approxql::fuzz

#endif  // APPROXQL_FUZZ_REGISTRY_H_
