#include "fuzz/registry.h"

#include "fuzz/targets.h"

namespace approxql::fuzz {

const std::vector<FuzzTarget>& AllTargets() {
  static const std::vector<FuzzTarget> targets = {
      {"frame_decoder", FuzzFrameDecoder},
      {"wire_query_request", FuzzWireQueryRequest},
      {"wire_query_response", FuzzWireQueryResponse},
      {"wire_shard_query", FuzzWireShardQuery},
      {"wire_shard_answer", FuzzWireShardAnswer},
      {"wire_pong", FuzzWirePong},
      {"wire_ingest", FuzzWireIngest},
      {"wire_ingest_ack", FuzzWireIngestAck},
      {"wire_manifest_fetch", FuzzWireManifestFetch},
      {"wire_manifest_slice", FuzzWireManifestSlice},
      {"wire_manifest_delta", FuzzWireManifestDelta},
      {"layout_manifest", FuzzLayoutManifest},
      {"data_tree", FuzzDataTree},
      {"posting", FuzzPosting},
      {"wal_replay", FuzzWalReplay},
      {"vlog_read", FuzzVlogRead},
      {"xml_parser", FuzzXmlParser},
      {"approxql_parser", FuzzApproxqlParser},
  };
  return targets;
}

}  // namespace approxql::fuzz
