// Shared round-trip scaffolding for the wire payload targets: decode the
// raw input; when it decodes, the re-encoding must re-decode and reach a
// byte-level fixed point. (The first encoding need not equal the input —
// decoders accept non-canonical varints; the *second* encoding must
// equal the first.)
#ifndef APPROXQL_FUZZ_TARGETS_WIRE_COMMON_H_
#define APPROXQL_FUZZ_TARGETS_WIRE_COMMON_H_

#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "util/status.h"

namespace approxql::fuzz {

template <typename Message, typename Decode, typename Encode>
int WirePayloadRoundTrip(const uint8_t* data, size_t size, Decode decode,
                         Encode encode) {
  std::string_view payload(reinterpret_cast<const char*>(data), size);
  Message message;
  util::Status st = decode(payload, &message);
  if (!st.ok()) {
    APPROXQL_FUZZ_ASSERT(!st.message().empty());
    return 0;
  }
  const std::string bytes = encode(message);
  Message again;
  util::Status st2 = decode(bytes, &again);
  APPROXQL_FUZZ_ASSERT(st2.ok());
  APPROXQL_FUZZ_ASSERT(encode(again) == bytes);
  return 0;
}

}  // namespace approxql::fuzz

#endif  // APPROXQL_FUZZ_TARGETS_WIRE_COMMON_H_
