#include "fuzz/targets.h"
#include "fuzz/targets/wire_common.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzWireManifestDelta(const uint8_t* data, size_t size) {
  return WirePayloadRoundTrip<net::WireManifestDelta>(
      data, size, net::DecodeManifestDelta, net::EncodeManifestDelta);
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWireManifestDelta)
