// Stream-level target: net::FrameDecoder over an adversarial byte
// stream, delivered in fuzz-chosen chunk sizes so torn frames, multiple
// frames per read, and mid-header splits are all exercised. Contract:
// every Take returns kFrame with a protocol-version header, kNeedMore,
// or kError with a message; after kError the decoder stays poisoned; the
// decoder never consumes more bytes than were appended.

#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "fuzz/targets.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzFrameDecoder(const uint8_t* data, size_t size) {
  FuzzInput input(data, size);
  // First byte picks the append-chunk size (1..256); the rest is stream.
  const size_t chunk = static_cast<size_t>(input.TakeByte()) + 1;
  std::string_view stream = input.TakeRest();

  net::FrameDecoder decoder;
  size_t frames = 0;
  bool dead = false;
  while (!stream.empty() && !dead) {
    const size_t n = stream.size() < chunk ? stream.size() : chunk;
    decoder.Append(stream.data(), n);
    stream.remove_prefix(n);
    for (;;) {
      net::FrameHeader header;
      std::string payload;
      util::Status error;
      net::FrameDecoder::Next next = decoder.Take(&header, &payload, &error);
      if (next == net::FrameDecoder::Next::kNeedMore) break;
      if (next == net::FrameDecoder::Next::kError) {
        APPROXQL_FUZZ_ASSERT(!error.ok());
        // Poisoned: the error must be sticky.
        net::FrameDecoder::Next again = decoder.Take(&header, &payload, &error);
        APPROXQL_FUZZ_ASSERT(again == net::FrameDecoder::Next::kError);
        dead = true;
        break;
      }
      APPROXQL_FUZZ_ASSERT(next == net::FrameDecoder::Next::kFrame);
      APPROXQL_FUZZ_ASSERT(header.version == net::kProtocolVersion);
      // A frame the decoder accepted must re-encode (its payload fits
      // the frame bound by construction) and re-extract identically.
      std::string bytes;
      APPROXQL_FUZZ_ASSERT(net::EncodeFrame(header, payload, &bytes).ok());
      net::FrameDecoder reparse;
      reparse.Append(bytes.data(), bytes.size());
      net::FrameHeader header2;
      std::string payload2;
      util::Status error2;
      APPROXQL_FUZZ_ASSERT(reparse.Take(&header2, &payload2, &error2) ==
                           net::FrameDecoder::Next::kFrame);
      APPROXQL_FUZZ_ASSERT(header2.request_id == header.request_id);
      APPROXQL_FUZZ_ASSERT(header2.type == header.type);
      APPROXQL_FUZZ_ASSERT(payload2 == payload);
      APPROXQL_FUZZ_ASSERT(reparse.buffered() == 0);
      ++frames;
    }
  }
  // Bounded progress: a frame is at least 4 length bytes + 3 header
  // varints + 4 CRC bytes on the wire.
  APPROXQL_FUZZ_ASSERT(frames <= size / 8);
  return 0;
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzFrameDecoder)
