#include "fuzz/targets.h"
#include "fuzz/targets/wire_common.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzWireManifestSlice(const uint8_t* data, size_t size) {
  return WirePayloadRoundTrip<net::WireManifestSlice>(
      data, size, net::DecodeManifestSlice, net::EncodeManifestSlice);
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWireManifestSlice)
