#include "fuzz/targets.h"
#include "fuzz/targets/wire_common.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzWireIngestAck(const uint8_t* data, size_t size) {
  return WirePayloadRoundTrip<net::WireIngestAck>(
      data, size, net::DecodeIngestAck, net::EncodeIngestAck);
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWireIngestAck)
