// The ApproxQL query parser over arbitrary bytes — query strings arrive
// over the wire verbatim. Contract: clean ParseError or an AST whose
// canonical ToString() re-parses to an equal AST with an identical
// canonical form. Nesting depth is capped by the parser, so recursive
// AST walks cannot overflow.

#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "fuzz/targets.h"
#include "query/ast.h"

namespace approxql::fuzz {

int FuzzApproxqlParser(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto result = query::Parse(text);
  if (!result.ok()) {
    APPROXQL_FUZZ_ASSERT(!result.status().message().empty());
    return 0;
  }
  APPROXQL_FUZZ_ASSERT(result->root != nullptr);
  const std::string canonical = result->ToString();
  auto again = query::Parse(canonical);
  APPROXQL_FUZZ_ASSERT(again.ok());
  APPROXQL_FUZZ_ASSERT(query::AstEquals(*result->root, *again->root));
  APPROXQL_FUZZ_ASSERT(again->ToString() == canonical);
  return 0;
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzApproxqlParser)
