// Value-log segment reads over a hostile log file. The first 16 input
// bytes pick a fuzz-chosen SegmentPointer; the rest becomes the file
// content. Read must verify length header and CRC and fail cleanly on
// any corruption — plus a handful of derived pointers probing the
// boundaries (header, end-of-file, wrap-around offsets).

#include <unistd.h>

#include <cstdio>
#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "fuzz/targets.h"
#include "storage/vlog/value_log.h"

namespace approxql::fuzz {
namespace {

std::string WriteTemp(std::string_view blob) {
  char path[] = "/tmp/approxql_vlog_fuzz_XXXXXX";
  int fd = mkstemp(path);
  if (fd < 0) return "";
  size_t off = 0;
  while (off < blob.size()) {
    ssize_t n = write(fd, blob.data() + off, blob.size() - off);
    if (n <= 0) {
      close(fd);
      unlink(path);
      return "";
    }
    off += static_cast<size_t>(n);
  }
  close(fd);
  return path;
}

void ProbeRead(const storage::ValueLog& log,
               const storage::SegmentPointer& pointer) {
  auto result = log.Read(pointer);
  if (result.ok()) {
    // An accepted read returns exactly the claimed length.
    APPROXQL_FUZZ_ASSERT(result->size() == pointer.length);
  } else {
    APPROXQL_FUZZ_ASSERT(!result.status().message().empty());
  }
}

}  // namespace

int FuzzVlogRead(const uint8_t* data, size_t size) {
  FuzzInput input(data, size);
  storage::SegmentPointer fuzzed;
  fuzzed.offset = input.TakeUint64();
  fuzzed.length = input.TakeUint64();
  std::string_view blob = input.TakeRest();

  const std::string path = WriteTemp(blob);
  if (path.empty()) return 0;
  auto opened = storage::ValueLog::Open(path);
  if (!opened.ok()) {
    APPROXQL_FUZZ_ASSERT(!opened.status().message().empty());
    unlink(path.c_str());
    return 0;
  }
  storage::ValueLog& log = **opened;

  ProbeRead(log, fuzzed);
  // Boundary probes derived from the file itself.
  const uint64_t header = storage::ValueLog::HeaderSize();
  const uint64_t end = log.size();
  ProbeRead(log, {0, 4});
  ProbeRead(log, {header, end > header ? end - header : 0});
  ProbeRead(log, {end, 1});
  ProbeRead(log, {end - 1, UINT64_MAX});             // length wraps
  ProbeRead(log, {UINT64_MAX - 4, 16});              // offset wraps
  ProbeRead(log, {fuzzed.offset % (end + 1), fuzzed.length % 256});

  // A fresh append through the public API must always read back.
  auto appended = log.Append("fuzz-value");
  if (appended.ok()) {
    auto back = log.Read(*appended);
    APPROXQL_FUZZ_ASSERT(back.ok());
    APPROXQL_FUZZ_ASSERT(*back == "fuzz-value");
  }

  opened->reset();
  unlink(path.c_str());
  return 0;
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzVlogRead)
