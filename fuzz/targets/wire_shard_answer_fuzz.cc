#include "fuzz/targets.h"
#include "fuzz/targets/wire_common.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzWireShardAnswer(const uint8_t* data, size_t size) {
  return WirePayloadRoundTrip<net::WireShardAnswer>(
      data, size, net::DecodeShardAnswer, net::EncodeShardAnswer);
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWireShardAnswer)
