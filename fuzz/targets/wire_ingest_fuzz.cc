#include "fuzz/targets.h"
#include "fuzz/targets/wire_common.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzWireIngest(const uint8_t* data, size_t size) {
  return WirePayloadRoundTrip<net::WireIngest>(data, size, net::DecodeIngest,
                                               net::EncodeIngest);
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWireIngest)
