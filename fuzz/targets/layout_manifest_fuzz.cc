// shard::LayoutManifest::Deserialize over hostile bytes — the blob a
// corpus-free router host loads at startup. Contract: clean Result or a
// manifest whose canonical re-serialization round-trips; claimed counts
// never drive allocations past the blob size.

#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "fuzz/targets.h"
#include "shard/layout_manifest.h"

namespace approxql::fuzz {

int FuzzLayoutManifest(const uint8_t* data, size_t size) {
  std::string_view blob(reinterpret_cast<const char*>(data), size);
  auto result = shard::LayoutManifest::Deserialize(blob);
  if (!result.ok()) {
    APPROXQL_FUZZ_ASSERT(!result.status().message().empty());
    return 0;
  }
  const std::string bytes = result->Serialize();
  auto again = shard::LayoutManifest::Deserialize(bytes);
  APPROXQL_FUZZ_ASSERT(again.ok());
  APPROXQL_FUZZ_ASSERT(again->Serialize() == bytes);
  APPROXQL_FUZZ_ASSERT(again->fingerprint() == result->fingerprint());
  APPROXQL_FUZZ_ASSERT(again->num_shards() == result->num_shards());
  // The accepted span tables must satisfy the id-translation invariant
  // the router leans on: every in-span local id maps into its span's
  // global range.
  for (size_t s = 0; s < result->num_shards(); ++s) {
    for (const shard::DocSpan& span : result->shard_spans(s)) {
      APPROXQL_FUZZ_ASSERT(result->ToGlobal(s, span.local_start) ==
                           span.global_start);
      APPROXQL_FUZZ_ASSERT(
          result->ToGlobal(s, span.local_start + span.length - 1) ==
          span.global_start + span.length - 1);
    }
  }
  return 0;
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzLayoutManifest)
