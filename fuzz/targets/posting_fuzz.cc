// index::DeserializePosting over hostile bytes — posting lists read back
// from B+tree leaves and the value log. Contract: clean Result or a
// strictly increasing posting that round-trips.

#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "fuzz/targets.h"
#include "index/label_index.h"

namespace approxql::fuzz {

int FuzzPosting(const uint8_t* data, size_t size) {
  std::string_view blob(reinterpret_cast<const char*>(data), size);
  auto result = index::DeserializePosting(blob);
  if (!result.ok()) {
    APPROXQL_FUZZ_ASSERT(!result.status().message().empty());
    return 0;
  }
  const index::Posting& posting = *result;
  for (size_t i = 1; i < posting.size(); ++i) {
    APPROXQL_FUZZ_ASSERT(posting[i] > posting[i - 1]);
  }
  std::string bytes;
  index::SerializePosting(posting, &bytes);
  auto again = index::DeserializePosting(bytes);
  APPROXQL_FUZZ_ASSERT(again.ok());
  APPROXQL_FUZZ_ASSERT(*again == posting);
  return 0;
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzPosting)
