// WAL replay over a hostile log file. The input bytes are written to a
// temporary file and opened with a fixed config string ("fuzz-config" —
// the seed generator uses the same one, so seeds replay as real logs).
// Contract: Open returns a clean error or a valid replay — sequence
// numbers strictly consecutive from base_seq — and a second open of the
// (now tail-truncated) file reproduces the same records with no further
// truncation.

#include <unistd.h>

#include <cstdio>
#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "fuzz/targets.h"
#include "storage/wal/wal.h"

namespace approxql::fuzz {
namespace {

constexpr std::string_view kConfig = "fuzz-config";

// Writes `blob` to a fresh temp file; empty string on failure.
std::string WriteTemp(std::string_view blob) {
  char path[] = "/tmp/approxql_wal_fuzz_XXXXXX";
  int fd = mkstemp(path);
  if (fd < 0) return "";
  size_t off = 0;
  while (off < blob.size()) {
    ssize_t n = write(fd, blob.data() + off, blob.size() - off);
    if (n <= 0) {
      close(fd);
      unlink(path);
      return "";
    }
    off += static_cast<size_t>(n);
  }
  close(fd);
  return path;
}

}  // namespace

int FuzzWalReplay(const uint8_t* data, size_t size) {
  std::string_view blob(reinterpret_cast<const char*>(data), size);
  const std::string path = WriteTemp(blob);
  if (path.empty()) return 0;

  auto first = storage::WriteAheadLog::Open(path, kConfig);
  if (!first.ok()) {
    APPROXQL_FUZZ_ASSERT(!first.status().message().empty());
    unlink(path.c_str());
    return 0;
  }
  const uint64_t base = first->wal->base_seq();
  uint64_t expect = base;
  for (const storage::WalRecord& record : first->records) {
    APPROXQL_FUZZ_ASSERT(record.seq == expect + 1);
    expect = record.seq;
  }
  APPROXQL_FUZZ_ASSERT(first->wal->last_seq() == expect);

  // Replay idempotence: the first open truncated any bad suffix, so a
  // second open sees a fully valid log.
  first->wal.reset();
  auto second = storage::WriteAheadLog::Open(path, kConfig);
  APPROXQL_FUZZ_ASSERT(second.ok());
  APPROXQL_FUZZ_ASSERT(!second->tail_truncated);
  APPROXQL_FUZZ_ASSERT(second->records.size() == first->records.size());
  for (size_t i = 0; i < second->records.size(); ++i) {
    APPROXQL_FUZZ_ASSERT(second->records[i].seq == first->records[i].seq);
    APPROXQL_FUZZ_ASSERT(second->records[i].type == first->records[i].type);
    APPROXQL_FUZZ_ASSERT(second->records[i].payload ==
                         first->records[i].payload);
  }
  second->wal.reset();
  unlink(path.c_str());
  return 0;
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWalReplay)
