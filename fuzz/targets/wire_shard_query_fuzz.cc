#include "fuzz/targets.h"
#include "fuzz/targets/wire_common.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzWireShardQuery(const uint8_t* data, size_t size) {
  return WirePayloadRoundTrip<net::WireShardQuery>(
      data, size, net::DecodeShardQuery, net::EncodeShardQuery);
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWireShardQuery)
