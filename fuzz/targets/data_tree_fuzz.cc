// doc::DataTree::Deserialize over hostile bytes — the per-document blob
// read back from the durable store. Contract: clean Result or a tree
// whose structure invariants hold (parents precede children, bounds
// nest) and whose re-serialization reaches a fixed point.

#include <string>
#include <string_view>

#include "cost/cost_model.h"
#include "doc/data_tree.h"
#include "fuzz/fuzz_util.h"
#include "fuzz/targets.h"

namespace approxql::fuzz {

int FuzzDataTree(const uint8_t* data, size_t size) {
  std::string_view blob(reinterpret_cast<const char*>(data), size);
  const cost::CostModel model;
  auto result = doc::DataTree::Deserialize(blob, model);
  if (!result.ok()) {
    APPROXQL_FUZZ_ASSERT(!result.status().message().empty());
    return 0;
  }
  const doc::DataTree& tree = *result;
  for (doc::NodeId id = 0; id < tree.size(); ++id) {
    const doc::DataNode& n = tree.node(id);
    if (id == 0) {
      APPROXQL_FUZZ_ASSERT(n.parent == doc::kInvalidNode);
    } else {
      APPROXQL_FUZZ_ASSERT(n.parent < id);
      // Preorder bounds nest: a child's subtree lies inside its parent's.
      APPROXQL_FUZZ_ASSERT(n.bound <= tree.node(n.parent).bound);
    }
    APPROXQL_FUZZ_ASSERT(n.bound >= id);
    APPROXQL_FUZZ_ASSERT(n.bound < tree.size());
  }
  std::string bytes;
  tree.Serialize(&bytes);
  auto again = doc::DataTree::Deserialize(bytes, model);
  APPROXQL_FUZZ_ASSERT(again.ok());
  std::string bytes2;
  again->Serialize(&bytes2);
  APPROXQL_FUZZ_ASSERT(bytes2 == bytes);
  return 0;
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzDataTree)
