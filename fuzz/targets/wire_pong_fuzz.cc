#include "fuzz/targets.h"
#include "fuzz/targets/wire_common.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzWirePong(const uint8_t* data, size_t size) {
  return WirePayloadRoundTrip<net::WirePong>(data, size, net::DecodePong,
                                             net::EncodePong);
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWirePong)
