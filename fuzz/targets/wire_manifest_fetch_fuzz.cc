#include "fuzz/targets.h"
#include "fuzz/targets/wire_common.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzWireManifestFetch(const uint8_t* data, size_t size) {
  return WirePayloadRoundTrip<net::WireManifestFetch>(
      data, size, net::DecodeManifestFetch, net::EncodeManifestFetch);
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWireManifestFetch)
