// The XML parser over arbitrary bytes — the full ingest path surface
// (documents arrive over the wire as raw XML). Contract: clean parse
// error or a DOM whose WriteXml serialization re-parses to the same
// serialization (fixed point). Depth is capped by the parser, so the
// recursive DOM destructor/writer cannot overflow.

#include <string>
#include <string_view>

#include "fuzz/fuzz_util.h"
#include "fuzz/targets.h"
#include "xml/xml_dom.h"

namespace approxql::fuzz {

int FuzzXmlParser(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto result = xml::ParseXmlDocument(text);
  if (!result.ok()) {
    APPROXQL_FUZZ_ASSERT(!result.status().message().empty());
    return 0;
  }
  APPROXQL_FUZZ_ASSERT(result->root != nullptr);
  const std::string written = xml::WriteXml(*result->root);
  auto again = xml::ParseXmlDocument(written);
  APPROXQL_FUZZ_ASSERT(again.ok());
  APPROXQL_FUZZ_ASSERT(xml::WriteXml(*again->root) == written);
  return 0;
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzXmlParser)
