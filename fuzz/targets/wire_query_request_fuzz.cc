#include "fuzz/targets.h"
#include "fuzz/targets/wire_common.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzWireQueryRequest(const uint8_t* data, size_t size) {
  return WirePayloadRoundTrip<net::WireRequest>(
      data, size, net::DecodeQueryRequest, net::EncodeQueryRequest);
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWireQueryRequest)
