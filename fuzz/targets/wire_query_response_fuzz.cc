#include "fuzz/targets.h"
#include "fuzz/targets/wire_common.h"
#include "net/wire.h"

namespace approxql::fuzz {

int FuzzWireQueryResponse(const uint8_t* data, size_t size) {
  return WirePayloadRoundTrip<net::WireResponse>(
      data, size, net::DecodeQueryResponse, net::EncodeQueryResponse);
}

}  // namespace approxql::fuzz

APPROXQL_FUZZ_MAIN(approxql::fuzz::FuzzWireQueryResponse)
