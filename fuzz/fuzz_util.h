// Shared harness utilities for the fuzz targets under fuzz/targets/.
//
// Every target is a plain named function
//
//   int FuzzXxx(const uint8_t* data, size_t size);
//
// declared in fuzz/targets.h and registered in fuzz/registry.cc. The
// same function body serves two drivers:
//
//   * libFuzzer executables (APPROXQL_FUZZ=ON, clang only): the
//     APPROXQL_FUZZ_MAIN macro below emits LLVMFuzzerTestOneInput, and
//     the target links with -fsanitize=fuzzer.
//   * the plain test build: tests/fuzz/fuzz_corpus_test.cc replays every
//     checked-in corpus file (and a deterministic mutation sweep) through
//     the registry, so fuzz findings are regression tests everywhere —
//     no clang required.
//
// Targets assert the library contract with APPROXQL_FUZZ_ASSERT: a clean
// Status/Result or a valid object, never a crash, hang, or sanitizer
// report. Round-trip targets additionally assert encode(decode(x))
// reaches a fixed point (the re-encoding of a decoded value re-decodes
// to the same bytes — NOT byte-equality with the hostile input, which
// may use non-canonical varints).
#ifndef APPROXQL_FUZZ_FUZZ_UTIL_H_
#define APPROXQL_FUZZ_FUZZ_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace approxql::fuzz {

// Abort-on-failure assert that works under both drivers: libFuzzer turns
// the abort into a reported crash with the offending input; the corpus
// replay test dies loudly instead of silently passing.
#define APPROXQL_FUZZ_ASSERT(cond)                                      \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "fuzz contract violated: %s at %s:%d\n",     \
                   #cond, __FILE__, __LINE__);                          \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

// FuzzedDataProvider-style slicing: consume structured values off the
// front of the raw input, leaving the rest as payload. Running out of
// bytes yields zeros rather than failing — targets must behave on any
// input length.
class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }

  uint8_t TakeByte() { return pos_ < size_ ? data_[pos_++] : 0; }

  uint64_t TakeUint64() {
    uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= static_cast<uint64_t>(TakeByte()) << (8 * i);
    }
    return value;
  }

  /// Consumes up to `n` bytes (fewer when the input runs short).
  std::string_view TakeBytes(size_t n) {
    if (n > remaining()) n = remaining();
    std::string_view out(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return out;
  }

  /// Everything not yet consumed; the input is exhausted afterwards.
  std::string_view TakeRest() { return TakeBytes(remaining()); }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace approxql::fuzz

// Emits the libFuzzer entry point around a named target function when
// this translation unit is compiled as a fuzz driver; expands to nothing
// in the plain library build (where the registry is the only consumer).
#ifdef APPROXQL_FUZZ_DRIVER
#define APPROXQL_FUZZ_MAIN(fn)                                            \
  extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) { \
    return fn(data, size);                                                \
  }
#else
#define APPROXQL_FUZZ_MAIN(fn)
#endif

#endif  // APPROXQL_FUZZ_FUZZ_UTIL_H_
