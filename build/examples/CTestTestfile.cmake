# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_music_catalog "/root/repo/build/examples/music_catalog")
set_tests_properties(example_music_catalog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_library_search "/root/repo/build/examples/library_search")
set_tests_properties(example_library_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_synthetic_benchmark "/root/repo/build/examples/synthetic_benchmark" "3000")
set_tests_properties(example_synthetic_benchmark PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
