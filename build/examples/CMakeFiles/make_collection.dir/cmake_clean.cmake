file(REMOVE_RECURSE
  "CMakeFiles/make_collection.dir/make_collection.cpp.o"
  "CMakeFiles/make_collection.dir/make_collection.cpp.o.d"
  "make_collection"
  "make_collection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_collection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
