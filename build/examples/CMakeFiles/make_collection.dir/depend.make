# Empty dependencies file for make_collection.
# This may be replaced when dependencies are built.
