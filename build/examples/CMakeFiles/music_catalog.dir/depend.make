# Empty dependencies file for music_catalog.
# This may be replaced when dependencies are built.
