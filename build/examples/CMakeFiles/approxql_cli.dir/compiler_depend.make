# Empty compiler generated dependencies file for approxql_cli.
# This may be replaced when dependencies are built.
