file(REMOVE_RECURSE
  "CMakeFiles/approxql_cli.dir/approxql_cli.cpp.o"
  "CMakeFiles/approxql_cli.dir/approxql_cli.cpp.o.d"
  "approxql_cli"
  "approxql_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approxql_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
