file(REMOVE_RECURSE
  "CMakeFiles/synthetic_benchmark.dir/synthetic_benchmark.cpp.o"
  "CMakeFiles/synthetic_benchmark.dir/synthetic_benchmark.cpp.o.d"
  "synthetic_benchmark"
  "synthetic_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
