# Empty compiler generated dependencies file for synthetic_benchmark.
# This may be replaced when dependencies are built.
