# Empty dependencies file for approxql.
# This may be replaced when dependencies are built.
