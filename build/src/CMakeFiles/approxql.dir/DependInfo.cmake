
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/closure_eval.cc" "src/CMakeFiles/approxql.dir/baseline/closure_eval.cc.o" "gcc" "src/CMakeFiles/approxql.dir/baseline/closure_eval.cc.o.d"
  "/root/repo/src/baseline/scan_eval.cc" "src/CMakeFiles/approxql.dir/baseline/scan_eval.cc.o" "gcc" "src/CMakeFiles/approxql.dir/baseline/scan_eval.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/approxql.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/approxql.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/doc/data_tree.cc" "src/CMakeFiles/approxql.dir/doc/data_tree.cc.o" "gcc" "src/CMakeFiles/approxql.dir/doc/data_tree.cc.o.d"
  "/root/repo/src/engine/database.cc" "src/CMakeFiles/approxql.dir/engine/database.cc.o" "gcc" "src/CMakeFiles/approxql.dir/engine/database.cc.o.d"
  "/root/repo/src/engine/direct_eval.cc" "src/CMakeFiles/approxql.dir/engine/direct_eval.cc.o" "gcc" "src/CMakeFiles/approxql.dir/engine/direct_eval.cc.o.d"
  "/root/repo/src/engine/list_ops.cc" "src/CMakeFiles/approxql.dir/engine/list_ops.cc.o" "gcc" "src/CMakeFiles/approxql.dir/engine/list_ops.cc.o.d"
  "/root/repo/src/engine/topk_eval.cc" "src/CMakeFiles/approxql.dir/engine/topk_eval.cc.o" "gcc" "src/CMakeFiles/approxql.dir/engine/topk_eval.cc.o.d"
  "/root/repo/src/gen/query_file.cc" "src/CMakeFiles/approxql.dir/gen/query_file.cc.o" "gcc" "src/CMakeFiles/approxql.dir/gen/query_file.cc.o.d"
  "/root/repo/src/gen/query_generator.cc" "src/CMakeFiles/approxql.dir/gen/query_generator.cc.o" "gcc" "src/CMakeFiles/approxql.dir/gen/query_generator.cc.o.d"
  "/root/repo/src/gen/xml_generator.cc" "src/CMakeFiles/approxql.dir/gen/xml_generator.cc.o" "gcc" "src/CMakeFiles/approxql.dir/gen/xml_generator.cc.o.d"
  "/root/repo/src/index/label_index.cc" "src/CMakeFiles/approxql.dir/index/label_index.cc.o" "gcc" "src/CMakeFiles/approxql.dir/index/label_index.cc.o.d"
  "/root/repo/src/index/secondary_index.cc" "src/CMakeFiles/approxql.dir/index/secondary_index.cc.o" "gcc" "src/CMakeFiles/approxql.dir/index/secondary_index.cc.o.d"
  "/root/repo/src/index/stored_label_index.cc" "src/CMakeFiles/approxql.dir/index/stored_label_index.cc.o" "gcc" "src/CMakeFiles/approxql.dir/index/stored_label_index.cc.o.d"
  "/root/repo/src/query/expanded.cc" "src/CMakeFiles/approxql.dir/query/expanded.cc.o" "gcc" "src/CMakeFiles/approxql.dir/query/expanded.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/CMakeFiles/approxql.dir/query/parser.cc.o" "gcc" "src/CMakeFiles/approxql.dir/query/parser.cc.o.d"
  "/root/repo/src/query/separated.cc" "src/CMakeFiles/approxql.dir/query/separated.cc.o" "gcc" "src/CMakeFiles/approxql.dir/query/separated.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/approxql.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/approxql.dir/schema/schema.cc.o.d"
  "/root/repo/src/storage/bptree.cc" "src/CMakeFiles/approxql.dir/storage/bptree.cc.o" "gcc" "src/CMakeFiles/approxql.dir/storage/bptree.cc.o.d"
  "/root/repo/src/storage/mem_kv_store.cc" "src/CMakeFiles/approxql.dir/storage/mem_kv_store.cc.o" "gcc" "src/CMakeFiles/approxql.dir/storage/mem_kv_store.cc.o.d"
  "/root/repo/src/storage/pager.cc" "src/CMakeFiles/approxql.dir/storage/pager.cc.o" "gcc" "src/CMakeFiles/approxql.dir/storage/pager.cc.o.d"
  "/root/repo/src/util/crc32.cc" "src/CMakeFiles/approxql.dir/util/crc32.cc.o" "gcc" "src/CMakeFiles/approxql.dir/util/crc32.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/approxql.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/approxql.dir/util/logging.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/approxql.dir/util/status.cc.o" "gcc" "src/CMakeFiles/approxql.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/approxql.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/approxql.dir/util/string_util.cc.o.d"
  "/root/repo/src/util/varint.cc" "src/CMakeFiles/approxql.dir/util/varint.cc.o" "gcc" "src/CMakeFiles/approxql.dir/util/varint.cc.o.d"
  "/root/repo/src/util/zipf.cc" "src/CMakeFiles/approxql.dir/util/zipf.cc.o" "gcc" "src/CMakeFiles/approxql.dir/util/zipf.cc.o.d"
  "/root/repo/src/xml/xml_dom.cc" "src/CMakeFiles/approxql.dir/xml/xml_dom.cc.o" "gcc" "src/CMakeFiles/approxql.dir/xml/xml_dom.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/CMakeFiles/approxql.dir/xml/xml_parser.cc.o" "gcc" "src/CMakeFiles/approxql.dir/xml/xml_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
