file(REMOVE_RECURSE
  "libapproxql.a"
)
