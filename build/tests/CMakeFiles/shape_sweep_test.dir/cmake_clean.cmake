file(REMOVE_RECURSE
  "CMakeFiles/shape_sweep_test.dir/engine/shape_sweep_test.cc.o"
  "CMakeFiles/shape_sweep_test.dir/engine/shape_sweep_test.cc.o.d"
  "shape_sweep_test"
  "shape_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
