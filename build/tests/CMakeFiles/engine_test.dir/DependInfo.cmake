
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/engine/database_test.cc" "tests/CMakeFiles/engine_test.dir/engine/database_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/database_test.cc.o.d"
  "/root/repo/tests/engine/direct_eval_test.cc" "tests/CMakeFiles/engine_test.dir/engine/direct_eval_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/direct_eval_test.cc.o.d"
  "/root/repo/tests/engine/list_ops_test.cc" "tests/CMakeFiles/engine_test.dir/engine/list_ops_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/list_ops_test.cc.o.d"
  "/root/repo/tests/engine/paper_example_test.cc" "tests/CMakeFiles/engine_test.dir/engine/paper_example_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/paper_example_test.cc.o.d"
  "/root/repo/tests/engine/stream_explain_test.cc" "tests/CMakeFiles/engine_test.dir/engine/stream_explain_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/stream_explain_test.cc.o.d"
  "/root/repo/tests/engine/topk_eval_test.cc" "tests/CMakeFiles/engine_test.dir/engine/topk_eval_test.cc.o" "gcc" "tests/CMakeFiles/engine_test.dir/engine/topk_eval_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/approxql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
