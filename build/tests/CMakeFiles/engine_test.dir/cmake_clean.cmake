file(REMOVE_RECURSE
  "CMakeFiles/engine_test.dir/engine/database_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/database_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/direct_eval_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/direct_eval_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/list_ops_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/list_ops_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/paper_example_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/paper_example_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/stream_explain_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/stream_explain_test.cc.o.d"
  "CMakeFiles/engine_test.dir/engine/topk_eval_test.cc.o"
  "CMakeFiles/engine_test.dir/engine/topk_eval_test.cc.o.d"
  "engine_test"
  "engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
